"""Unit tests for query-to-object distance states and block bounds."""

import math

import numpy as np
import pytest

from repro.datasets import random_edge_objects, random_vertex_objects
from repro.objects import EdgePosition, ObjectIndex, VertexPosition
from repro.query.distances import QueryHandle
from repro.query.location import resolve_location


def truth_to_edge_object(net, D, q, pos):
    """Definitional network distance from vertex q to an edge object."""
    best = D[q, pos.a] + pos.fraction * net.edge_weight(pos.a, pos.b)
    if net.has_edge(pos.b, pos.a):
        best = min(
            best,
            D[q, pos.b] + (1 - pos.fraction) * net.edge_weight(pos.b, pos.a),
        )
    return best


@pytest.fixture(scope="module")
def handle_setup(small_net, small_index, small_objects):
    oi = ObjectIndex(small_net, small_objects, small_index.embedding)
    return small_net, small_index, oi


class TestVertexObjectDistances:
    def test_interval_contains_truth(self, handle_setup, small_dist):
        net, idx, oi = handle_setup
        handle = QueryHandle(idx, oi, resolve_location(net, 0))
        for obj in oi.objects:
            state = handle.object_state(obj)
            truth = small_dist[0, obj.position.vertex]
            assert state.interval.lo - 1e-9 <= truth <= state.interval.hi + 1e-9

    def test_refine_fully_is_exact(self, handle_setup, small_dist):
        net, idx, oi = handle_setup
        handle = QueryHandle(idx, oi, resolve_location(net, 3))
        for obj in list(oi.objects)[:8]:
            state = handle.object_state(obj)
            d = state.refine_fully()
            assert d == pytest.approx(
                small_dist[3, obj.position.vertex], rel=1e-9, abs=1e-12
            )

    def test_refinement_monotone(self, handle_setup):
        net, idx, oi = handle_setup
        handle = QueryHandle(idx, oi, resolve_location(net, 7))
        state = handle.object_state(oi.get(0))
        prev = state.interval
        while state.refine():
            assert state.interval.lo >= prev.lo - 1e-12
            assert state.interval.hi <= prev.hi + 1e-12
            prev = state.interval


class TestEdgeObjectDistances:
    def test_edge_object_distance_exact(self, small_net, small_index, small_dist):
        objs = random_edge_objects(small_net, count=12, seed=8)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        handle = QueryHandle(small_index, oi, resolve_location(small_net, 0))
        for obj in objs:
            state = handle.object_state(obj)
            truth = truth_to_edge_object(small_net, small_dist, 0, obj.position)
            assert state.interval.lo - 1e-9 <= truth <= state.interval.hi + 1e-9
            assert state.refine_fully() == pytest.approx(truth, rel=1e-9)

    def test_query_on_edge_to_vertex_objects(
        self, small_net, small_index, small_objects, small_dist
    ):
        a, (b, w) = 0, small_net.neighbors(0)[0]
        qpos = EdgePosition(a, b, 0.4)
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        handle = QueryHandle(small_index, oi, qpos)
        w_rev = small_net.edge_weight(b, a) if small_net.has_edge(b, a) else None
        for obj in small_objects:
            t = obj.position.vertex
            truth = 0.6 * w + small_dist[b, t]
            if w_rev is not None:
                truth = min(truth, 0.4 * w_rev + small_dist[a, t])
            state = handle.object_state(obj)
            assert state.refine_fully() == pytest.approx(truth, rel=1e-9)


class TestBlockBounds:
    def test_bounds_sound_for_vertex_objects(self, handle_setup, small_dist):
        net, idx, oi = handle_setup
        handle = QueryHandle(idx, oi, resolve_location(net, 11))
        for node in oi.tree.iter_nodes():
            if node.is_leaf and not node.entries:
                continue
            bound = handle.block_bound(node)
            for obj in oi.objects:
                cell = idx.vertex_codes[obj.position.vertex]
                from repro.geometry.morton import block_contains

                if block_contains(node.code, node.level, int(cell)):
                    truth = small_dist[11, obj.position.vertex]
                    assert bound <= truth + 1e-9

    def test_bounds_sound_for_edge_objects(self, small_net, small_index, small_dist):
        objs = random_edge_objects(small_net, count=15, seed=9)
        oi = ObjectIndex(small_net, objs, small_index.embedding)
        handle = QueryHandle(small_index, oi, resolve_location(small_net, 2))
        from repro.geometry.morton import block_contains

        for node in oi.tree.iter_nodes():
            bound = handle.block_bound(node)
            for oid, cell, _ in node.entries:
                truth = truth_to_edge_object(
                    small_net, small_dist, 2, objs[oid].position
                )
                assert bound <= truth + 1e-9

    def test_empty_vertexless_block_is_inf(self, handle_setup):
        net, idx, oi = handle_setup
        handle = QueryHandle(idx, oi, resolve_location(net, 0))
        from repro.quadtree.pmr import PMRNode

        # craft a node over the top-right corner cell, far from data
        top = idx.embedding.cells_per_side - 1
        from repro.geometry.morton import morton_encode

        code = morton_encode(top, top)
        node = PMRNode(code=code, level=0)
        if idx.tables[0].locate(code) == -1:
            assert math.isinf(handle.block_bound(node))
