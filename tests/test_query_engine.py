"""QueryEngine: batched queries must match per-query calls exactly."""

import pytest

from repro import QueryEngine
from repro.geometry import Point
from repro.query import VARIANTS, best_first_knn
from repro.query.stats import QueryStats


@pytest.fixture()
def engine(small_index, small_object_index):
    return QueryEngine(small_index, small_object_index)


QUERIES = [0, 17, 42, 99, 149, 42]  # includes a repeat


class TestKnnBatch:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matches_per_query_knn(self, engine, small_index, small_object_index, variant):
        batch = engine.knn_batch(QUERIES, k=4, variant=variant)
        assert len(batch) == len(QUERIES)
        for q, result in zip(QUERIES, batch.results):
            single = best_first_knn(
                small_index, small_object_index, q, 4, variant=variant
            )
            assert result.ids() == single.ids()
            assert result.ordered == single.ordered
            assert [n.interval.lo for n in result.neighbors] == [
                n.interval.lo for n in single.neighbors
            ]

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_exact_matches_per_query(self, engine, small_index, small_object_index, variant):
        batch = engine.knn_batch(QUERIES[:3], k=3, variant=variant, exact=True)
        for q, result in zip(QUERIES, batch.results):
            single = best_first_knn(
                small_index, small_object_index, q, 3, variant=variant, exact=True
            )
            assert result.ids() == single.ids()
            assert [n.distance for n in result.neighbors] == pytest.approx(
                [n.distance for n in single.neighbors]
            )

    def test_aggregated_stats_sum_counters(self, engine):
        batch = engine.knn_batch(QUERIES, k=4)
        assert isinstance(batch.stats, QueryStats)
        for counter in ("refinements", "queue_pushes", "objects_seen", "l_ops"):
            assert getattr(batch.stats, counter) == sum(
                getattr(r.stats, counter) for r in batch.results
            )
        assert batch.stats.elapsed == pytest.approx(
            sum(r.stats.elapsed for r in batch.results)
        )
        assert batch.elapsed >= batch.stats.elapsed * 0.5

    def test_empty_batch(self, engine):
        batch = engine.knn_batch([], k=3)
        assert len(batch) == 0
        assert batch.stats.refinements == 0
        assert batch.ids() == []

    def test_unknown_variant_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.knn_batch([0], k=3, variant="bogus")

    def test_batch_result_sequence_protocol(self, engine):
        batch = engine.knn_batch(QUERIES[:2], k=2)
        assert batch[0].ids() == batch.ids()[0]
        assert [r.ids() for r in batch] == batch.ids()


class TestLocationSharing:
    def test_locations_cached_across_calls(self, engine):
        engine.knn_batch([5, 5, 5], k=2)
        assert 5 in engine._positions
        pos = engine._positions[5]
        engine.knn(5, k=2)
        assert engine._positions[5] is pos

    def test_point_queries_resolve(self, engine, small_net):
        p = Point(float(small_net.xs[10]), float(small_net.ys[10]))
        batch = engine.knn_batch([p, p], k=3)
        single = engine.knn(10, k=3)
        assert batch.results[0].ids() == single.ids()
        assert p in engine._positions


class TestGeneratorQueries:
    def test_generator_batch_matches_list_batch(self, engine):
        """Regression: one-shot iterables must be consumed exactly once."""
        from_list = engine.knn_batch(QUERIES, k=3)
        from_gen = engine.knn_batch((q for q in QUERIES), k=3)
        assert len(from_gen) == len(QUERIES)
        assert from_gen.ids() == from_list.ids()

    def test_queries_iterated_exactly_once(self, engine):
        pulls = []

        def gen():
            for q in QUERIES:
                pulls.append(q)
                yield q

        batch = engine.knn_batch(gen(), k=2)
        assert pulls == QUERIES
        assert len(batch) == len(QUERIES)

    def test_invalid_variant_rejected_before_consuming(self, engine):
        gen = (q for q in QUERIES)
        with pytest.raises(ValueError):
            engine.knn_batch(gen, k=2, variant="bogus")
        assert list(gen) == QUERIES  # untouched, still usable


class TestBoundedLocationCache:
    def test_cache_never_exceeds_bound(self, small_index, small_object_index):
        engine = QueryEngine(small_index, small_object_index, max_locations=4)
        engine.knn_batch(range(20), k=2)
        assert len(engine._positions) == 4

    def test_lru_eviction_order(self, small_index, small_object_index):
        engine = QueryEngine(small_index, small_object_index, max_locations=3)
        engine.knn_batch([0, 1, 2], k=2)
        engine.knn(0, k=2)  # refresh 0: now 1 is the eviction victim
        engine.knn(3, k=2)
        assert set(engine._positions) == {0, 2, 3}

    def test_unbounded_when_none(self, small_index, small_object_index):
        engine = QueryEngine(small_index, small_object_index, max_locations=None)
        engine.knn_batch(range(50), k=2)
        assert len(engine._positions) == 50

    def test_bound_validated(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            QueryEngine(small_index, small_object_index, max_locations=0)

    def test_evicted_location_still_answers_correctly(self, small_index, small_object_index):
        bounded = QueryEngine(small_index, small_object_index, max_locations=2)
        unbounded = QueryEngine(small_index, small_object_index)
        bounded.knn_batch(range(10), k=3)
        assert bounded.knn(0, k=3).ids() == unbounded.knn(0, k=3).ids()


class TestMidBatchFailure:
    """Satellite: the simulator must be restored when a query raises."""

    def test_storage_detached_after_mid_batch_error(self, small_index, small_object_index):
        engine = QueryEngine(small_index, small_object_index, cache_fraction=0.05)
        with pytest.raises(Exception):
            engine.knn_batch([0, 1, 10**9, 2], k=2)
        assert small_index.storage is None

    def test_caller_simulator_restored_after_error(self, small_index, small_object_index):
        theirs = small_index.make_storage(cache_fraction=0.05)
        small_index.attach_storage(theirs)
        try:
            engine = QueryEngine(small_index, small_object_index, cache_fraction=0.05)
            with pytest.raises(Exception):
                engine.knn_batch([0, 10**9], k=2)
            assert small_index.storage is theirs
            with pytest.raises(Exception):
                engine.knn(10**9, k=2)
            assert small_index.storage is theirs
        finally:
            small_index.detach_storage()

    def test_engine_still_serves_after_error(self, small_index, small_object_index):
        engine = QueryEngine(small_index, small_object_index, cache_fraction=0.05)
        with pytest.raises(Exception):
            engine.knn_batch([0, 10**9], k=2)
        batch = engine.knn_batch([0, 5], k=2)
        assert len(batch) == 2
        assert small_index.storage is None


class TestStorageReuse:
    def test_single_simulator_across_batch(self, small_index, small_object_index):
        engine = QueryEngine(
            small_index, small_object_index, cache_fraction=0.05
        )
        batch1 = engine.knn_batch(QUERIES, k=4)
        accesses_1 = engine.storage.stats.accesses
        assert batch1.stats.io_accesses == accesses_1
        # The same simulator keeps serving the next batch: its page
        # cache is warm, so the second identical batch misses less.
        batch2 = engine.knn_batch(QUERIES, k=4)
        assert engine.storage.stats.accesses == accesses_1 + batch2.stats.io_accesses
        assert batch2.stats.io_misses <= batch1.stats.io_misses
        # Results are unaffected by I/O accounting.
        no_io = QueryEngine(small_index, small_object_index).knn_batch(
            QUERIES, k=4
        )
        assert batch1.ids() == no_io.ids()

    def test_detaches_after_batch(self, small_index, small_object_index):
        engine = QueryEngine(
            small_index, small_object_index, cache_fraction=0.05
        )
        engine.knn_batch(QUERIES[:2], k=2)
        assert small_index.storage is None

    def test_restores_caller_attached_simulator(self, small_index, small_object_index):
        theirs = small_index.make_storage(cache_fraction=0.05)
        small_index.attach_storage(theirs)
        try:
            engine = QueryEngine(
                small_index, small_object_index, cache_fraction=0.05
            )
            engine.knn_batch(QUERIES[:2], k=2)
            assert small_index.storage is theirs
            engine.knn(0, k=2)
            assert small_index.storage is theirs
        finally:
            small_index.detach_storage()

    def test_storage_and_fraction_exclusive(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            QueryEngine(
                small_index,
                small_object_index,
                storage=small_index.make_storage(),
                cache_fraction=0.05,
            )
