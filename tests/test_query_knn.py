"""Correctness tests for the kNN algorithm and all its variants."""

import numpy as np
import pytest

from repro.datasets import random_edge_objects, random_vertex_objects
from repro.objects import EdgePosition, ObjectIndex
from repro.query import SILC_ALGORITHMS, inn, knn, knn_i, knn_m
from repro.query.bestfirst import best_first_knn

ALGORITHMS = list(SILC_ALGORITHMS.items())


def truth_distances(dist_matrix, objects, q):
    return sorted(
        (float(dist_matrix[q, o.position.vertex]), o.oid) for o in objects
    )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("name,algo", ALGORITHMS)
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(
        self, name, algo, k, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        truth = truth_distances(small_dist, small_objects, 17)[:k]
        result = algo(small_index, oi, 17, k, exact=True)
        assert len(result) == k
        got = sorted(n.distance for n in result.neighbors)
        np.testing.assert_allclose(got, [d for d, _ in truth], rtol=1e-9)

    @pytest.mark.parametrize("name,algo", ALGORITHMS)
    def test_many_random_queries(
        self, name, algo, small_net, small_index, small_objects, small_dist, rng
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        for _ in range(15):
            q = int(rng.integers(0, small_net.num_vertices))
            k = int(rng.choice([1, 2, 5, 8]))
            truth = truth_distances(small_dist, small_objects, q)[:k]
            result = algo(small_index, oi, q, k, exact=True)
            got = sorted(n.distance for n in result.neighbors)
            np.testing.assert_allclose(got, [d for d, _ in truth], rtol=1e-6)

    @pytest.mark.parametrize("name,algo", ALGORITHMS)
    def test_k_larger_than_object_set(
        self, name, algo, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = algo(small_index, oi, 0, len(small_objects) + 10, exact=True)
        assert len(result) == len(small_objects)

    def test_k_validation(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            knn(small_index, small_object_index, 0, 0)

    def test_unknown_variant_rejected(self, small_index, small_object_index):
        with pytest.raises(ValueError):
            best_first_knn(small_index, small_object_index, 0, 3, variant="bogus")


class TestOrderingContracts:
    def test_knn_sorted_output(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = knn(small_index, oi, 5, 8, exact=True)
        assert result.ordered
        dists = [n.distance for n in result.neighbors]
        assert dists == sorted(dists)

    def test_inn_reports_in_increasing_order(
        self, small_net, small_index, small_objects
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = inn(small_index, oi, 5, 8)
        los = [n.interval.lo for n in result.neighbors]
        his = [n.interval.hi for n in result.neighbors]
        # confirmed order: each neighbor's upper bound below the next
        # neighbor's lower bound (up to refinement overlap at ties)
        for i in range(len(result.neighbors) - 1):
            assert his[i] <= los[i + 1] + 1e-9

    def test_knn_m_flags_unsorted(self, small_net, small_index, small_objects):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = knn_m(small_index, oi, 5, 8)
        assert not result.ordered

    def test_intervals_contain_exact_distance_without_exact_flag(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = knn(small_index, oi, 9, 5)  # exact=False
        truth = dict(
            (o.oid, float(small_dist[9, o.position.vertex]))
            for o in small_objects
        )
        for n in result.neighbors:
            assert n.interval.lo - 1e-9 <= truth[n.oid] <= n.interval.hi + 1e-9


class TestEdgeObjectQueries:
    def test_knn_with_edge_objects(self, small_net, small_index, small_dist):
        objs = random_edge_objects(small_net, count=25, seed=13)
        oi = ObjectIndex(small_net, objs, small_index.embedding)

        def edge_truth(q):
            out = []
            for o in objs:
                pos = o.position
                d = small_dist[q, pos.a] + pos.fraction * small_net.edge_weight(
                    pos.a, pos.b
                )
                if small_net.has_edge(pos.b, pos.a):
                    d = min(
                        d,
                        small_dist[q, pos.b]
                        + (1 - pos.fraction) * small_net.edge_weight(pos.b, pos.a),
                    )
                out.append((float(d), o.oid))
            return sorted(out)

        for q in (0, 40, 99):
            truth = edge_truth(q)[:5]
            result = knn(small_index, oi, q, 5, exact=True)
            got = sorted(n.distance for n in result.neighbors)
            np.testing.assert_allclose(got, [d for d, _ in truth], rtol=1e-9)

    def test_query_on_edge(self, small_net, small_index, small_objects, small_dist):
        a, (b, w) = 0, small_net.neighbors(0)[0]
        qpos = EdgePosition(a, b, 0.3)
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        w_rev = small_net.edge_weight(b, a) if small_net.has_edge(b, a) else None

        def q_truth():
            out = []
            for o in small_objects:
                t = o.position.vertex
                d = 0.7 * w + small_dist[b, t]
                if w_rev is not None:
                    d = min(d, 0.3 * w_rev + small_dist[a, t])
                out.append((float(d), o.oid))
            return sorted(out)

        truth = q_truth()[:4]
        result = knn(small_index, oi, qpos, 4, exact=True)
        got = sorted(n.distance for n in result.neighbors)
        np.testing.assert_allclose(got, [d for d, _ in truth], rtol=1e-9)


class TestStatsContracts:
    def test_refinements_counted(self, small_index, small_object_index):
        result = knn(small_index, small_object_index, 0, 5)
        assert result.stats.refinements > 0
        assert result.stats.max_queue > 0
        assert result.stats.objects_seen >= 5

    def test_knn_tracks_l_ops(self, small_index, small_object_index):
        result = knn(small_index, small_object_index, 0, 5)
        assert result.stats.l_ops > 0
        assert result.stats.l_time >= 0.0

    def test_inn_has_no_l_ops(self, small_index, small_object_index):
        result = inn(small_index, small_object_index, 0, 5)
        assert result.stats.l_ops == 0

    def test_knn_i_records_d0k(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = knn_i(small_index, oi, 0, 5, exact=True)
        truth_k = truth_distances(small_dist, small_objects, 0)[4][0]
        assert result.stats.d0k is not None
        assert result.stats.d0k >= truth_k - 1e-9  # estimate upper-bounds Dk

    def test_knn_m_kmindist_lower_bounds_dk(
        self, small_net, small_index, small_objects, small_dist
    ):
        oi = ObjectIndex(small_net, small_objects, small_index.embedding)
        result = knn_m(small_index, oi, 0, 5, exact=True)
        truth_k = truth_distances(small_dist, small_objects, 0)[4][0]
        assert result.stats.kmindist_final is not None
        assert result.stats.kmindist_final <= truth_k + 1e-9

    def test_exact_flag_records_post_refinements(
        self, small_index, small_object_index
    ):
        result = knn(small_index, small_object_index, 3, 5, exact=True)
        assert "post_refinements" in result.stats.extras

    def test_elapsed_positive(self, small_index, small_object_index):
        result = knn(small_index, small_object_index, 0, 3)
        assert result.stats.elapsed > 0


class TestVariantRelationships:
    def test_knn_m_never_more_refinements_than_inn(
        self, small_net, small_index, small_dist, rng
    ):
        objects = random_vertex_objects(small_net, count=40, seed=20)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        worse = 0
        for _ in range(10):
            q = int(rng.integers(0, small_net.num_vertices))
            r_inn = inn(small_index, oi, q, 8)
            r_m = knn_m(small_index, oi, q, 8)
            if r_m.stats.refinements > r_inn.stats.refinements:
                worse += 1
        assert worse <= 2  # overwhelmingly fewer or equal

    def test_queue_pruning_reduces_pushes(
        self, small_net, small_index, rng
    ):
        objects = random_vertex_objects(small_net, count=60, seed=21)
        oi = ObjectIndex(small_net, objects, small_index.embedding)
        total_knn = total_inn = 0
        for _ in range(10):
            q = int(rng.integers(0, small_net.num_vertices))
            total_knn += knn(small_index, oi, q, 3).stats.queue_pushes
            total_inn += inn(small_index, oi, q, 3).stats.queue_pushes
        assert total_knn <= total_inn
