"""Unit tests for query locations and anchors."""

import pytest

from repro.geometry import Point
from repro.objects import EdgePosition, VertexPosition
from repro.query import resolve_location, same_edge_direct, source_anchors, target_anchors


def first_edge(net, u=0):
    v, w = net.neighbors(u)[0]
    return u, v, w


class TestResolveLocation:
    def test_int_becomes_vertex_position(self, small_net):
        assert resolve_location(small_net, 5) == VertexPosition(5)

    def test_int_bounds_checked(self, small_net):
        from repro.network import VertexNotFound

        with pytest.raises(VertexNotFound):
            resolve_location(small_net, 10_000)

    def test_positions_pass_through(self, small_net):
        pos = EdgePosition(*first_edge(small_net)[:2], 0.5)
        assert resolve_location(small_net, pos) is pos

    def test_point_snaps_to_nearest_vertex(self, small_net):
        p = small_net.vertex_point(9)
        near = Point(p.x + 1e-4, p.y - 1e-4)
        assert resolve_location(small_net, near) == VertexPosition(9)

    def test_unsupported_type_rejected(self, small_net):
        with pytest.raises(TypeError):
            resolve_location(small_net, "downtown")


class TestAnchors:
    def test_vertex_anchors_trivial(self, small_net):
        assert source_anchors(small_net, VertexPosition(4)) == [(4, 0.0)]
        assert target_anchors(small_net, VertexPosition(4)) == [(4, 0.0)]

    def test_edge_source_anchors(self, small_net):
        a, b, w = first_edge(small_net)
        anchors = dict(source_anchors(small_net, EdgePosition(a, b, 0.25)))
        assert anchors[b] == pytest.approx(0.75 * w)
        if small_net.has_edge(b, a):
            assert anchors[a] == pytest.approx(
                0.25 * small_net.edge_weight(b, a)
            )

    def test_edge_target_anchors(self, small_net):
        a, b, w = first_edge(small_net)
        anchors = dict(target_anchors(small_net, EdgePosition(a, b, 0.25)))
        assert anchors[a] == pytest.approx(0.25 * w)
        if small_net.has_edge(b, a):
            assert anchors[b] == pytest.approx(
                0.75 * small_net.edge_weight(b, a)
            )

    def test_one_way_edge_has_single_anchor(self):
        from repro.network import SpatialNetwork

        net = SpatialNetwork(
            [0.0, 1.0, 0.5],
            [0.0, 0.0, 1.0],
            [(0, 1, 1.0), (1, 2, 1.2), (2, 0, 1.2)],  # one-way triangle
        )
        pos = EdgePosition(0, 1, 0.5)
        assert source_anchors(net, pos) == [(1, pytest.approx(0.5))]
        assert target_anchors(net, pos) == [(0, pytest.approx(0.5))]


class TestSameEdgeDirect:
    def test_same_vertex(self, small_net):
        assert same_edge_direct(small_net, VertexPosition(3), VertexPosition(3)) == 0.0

    def test_distinct_vertices_none(self, small_net):
        assert same_edge_direct(small_net, VertexPosition(3), VertexPosition(4)) is None

    def test_downstream_object_on_same_edge(self, small_net):
        a, b, w = first_edge(small_net)
        d = same_edge_direct(
            small_net, EdgePosition(a, b, 0.2), EdgePosition(a, b, 0.7)
        )
        assert d == pytest.approx(0.5 * w)

    def test_upstream_object_is_none(self, small_net):
        a, b, _ = first_edge(small_net)
        assert (
            same_edge_direct(
                small_net, EdgePosition(a, b, 0.7), EdgePosition(a, b, 0.2)
            )
            is None
        )

    def test_opposite_orientation_segment(self, small_net):
        a, b, _ = first_edge(small_net)
        if not small_net.has_edge(b, a):
            pytest.skip("needs bidirectional edge")
        w_rev = small_net.edge_weight(b, a)
        # source at fraction 0.7 along (a,b) == 0.3 along (b,a);
        # target at 0.6 along (b,a) is downstream of it.
        d = same_edge_direct(
            small_net, EdgePosition(a, b, 0.7), EdgePosition(b, a, 0.6)
        )
        assert d == pytest.approx(0.3 * w_rev)
