"""Admission control: token buckets and the global in-flight cap."""

import pytest

from repro.serve import AdmissionController, Request, TokenBucket


class FakeClock:
    """A manually advanced monotonic clock for deterministic buckets."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def req(client="a", cost=1, rid=0):
    if cost == 1:
        return Request(id=rid, client=client, kind="knn", queries=(0,))
    return Request(id=rid, client=client, kind="knn_batch", queries=tuple(range(cost)))


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        for _ in range(3):
            ok, _ = bucket.try_acquire()
            assert ok
        ok, retry_after = bucket.try_acquire()
        assert not ok
        assert retry_after == pytest.approx(0.1)  # 1 token at 10/s

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        bucket.try_acquire(5)
        clock.advance(0.25)
        assert bucket.tokens == pytest.approx(2.5)
        ok, _ = bucket.try_acquire(2)
        assert ok

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=4.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(4.0)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestInFlightCap:
    def test_admits_until_cap_then_sheds(self):
        ctl = AdmissionController(max_in_flight=5)
        r1, r2 = req(cost=3, rid=1), req(cost=2, rid=2)
        assert ctl.admit(r1)[0]
        assert ctl.admit(r2)[0]
        assert ctl.in_flight == 5
        admitted, retry_after, reason = ctl.admit(req(rid=3))
        assert not admitted
        assert reason == "in_flight_cap"
        assert retry_after > 0
        assert ctl.shed_count == 1

    def test_release_frees_budget(self):
        ctl = AdmissionController(max_in_flight=2)
        r = req(cost=2)
        assert ctl.admit(r)[0]
        assert not ctl.admit(req())[0]
        ctl.release(r)
        assert ctl.in_flight == 0
        assert ctl.admit(req())[0]

    def test_cap_is_on_queries_not_requests(self):
        ctl = AdmissionController(max_in_flight=10)
        ctl.admit(req(cost=6, rid=1))
        admitted, _, reason = ctl.admit(req(cost=6, rid=2))
        assert not admitted and reason == "in_flight_cap"

    def test_never_fitting_cost_is_terminal(self):
        """cost > cap can never succeed: no finite retry_after lie."""
        ctl = AdmissionController(max_in_flight=10)
        admitted, retry_after, reason = ctl.admit(req(cost=11))
        assert not admitted
        assert reason == "request_too_large"
        assert retry_after == 0
        assert ctl.shed_count == 1

    def test_cost_over_bucket_burst_is_terminal(self):
        clock = FakeClock()
        ctl = AdmissionController(max_in_flight=None, rate=2.0, burst=4.0, clock=clock)
        admitted, retry_after, reason = ctl.admit(req(cost=5))
        assert not admitted
        assert reason == "request_too_large"
        assert retry_after == 0
        # a fitting request from the same client still goes through
        assert ctl.admit(req(cost=4))[0]

    def test_uncapped_when_none(self):
        ctl = AdmissionController(max_in_flight=None)
        for i in range(100):
            assert ctl.admit(req(cost=50, rid=i))[0]

    def test_validates_cap(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)

    def test_validates_rate_and_burst_eagerly(self):
        """A bad --rate must fail at startup, not on the first request."""
        with pytest.raises(ValueError, match="rate"):
            AdmissionController(rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            AdmissionController(rate=-1.0)
        with pytest.raises(ValueError, match="burst"):
            AdmissionController(rate=1.0, burst=0.0)


class TestPerClientRate:
    def test_default_bucket_applies_per_client(self):
        clock = FakeClock()
        ctl = AdmissionController(max_in_flight=None, rate=2.0, clock=clock)
        assert ctl.admit(req("a"))[0]
        assert ctl.admit(req("a"))[0]
        admitted, retry_after, reason = ctl.admit(req("a"))
        assert not admitted and reason == "rate_limited"
        assert retry_after == pytest.approx(0.5)
        # an independent client has its own bucket
        assert ctl.admit(req("b"))[0]

    def test_rate_limit_recovers_with_time(self):
        clock = FakeClock()
        ctl = AdmissionController(max_in_flight=None, rate=2.0, clock=clock)
        ctl.admit(req("a", cost=2))
        assert not ctl.admit(req("a"))[0]
        clock.advance(1.0)  # 2 tokens back
        assert ctl.admit(req("a"))[0]

    def test_configure_client_overrides_default(self):
        clock = FakeClock()
        ctl = AdmissionController(max_in_flight=None, rate=1.0, clock=clock)
        ctl.configure_client("vip", rate=None)  # unlimited
        for i in range(50):
            assert ctl.admit(req("vip", rid=i))[0]
        ctl.configure_client("slow", rate=1.0, burst=1.0)
        assert ctl.admit(req("slow"))[0]
        assert not ctl.admit(req("slow"))[0]

    def test_rejected_requests_do_not_consume_budget(self):
        ctl = AdmissionController(max_in_flight=3)
        ctl.admit(req(cost=3, rid=1))
        before = ctl.in_flight
        ctl.admit(req(cost=2, rid=2))
        assert ctl.in_flight == before
