"""End-to-end deadline enforcement: budgets cap execution, not just
queueing.

A request's ``deadline`` used to be checked only at dispatch; a query
that expired *mid-execution* still ran to completion and was delivered
late.  Now the remaining budget rides from the server through
:class:`~repro.serve.engine.AsyncEngine` into the search loops, which
raise :class:`~repro.errors.DeadlineExceeded` the moment it runs out
-- surfaced to the client as ``Expired`` with ``aborted=True``.
"""

import asyncio
import time

import pytest

from repro.engine import QueryEngine
from repro.errors import DeadlineExceeded
from repro.query import best_first_knn
from repro.serve import AsyncEngine, Request, SILCServer
from repro.serve.protocol import (
    Completed,
    Expired,
    response_to_dict,
)


@pytest.fixture()
def engine(small_index, small_object_index):
    return QueryEngine(small_index, small_object_index, cache_fraction=0.05)


class TestSearchLevelBudget:
    def test_zero_budget_expires_before_searching(
        self, small_index, small_object_index
    ):
        with pytest.raises(DeadlineExceeded):
            best_first_knn(small_index, small_object_index, 0, 3, time_budget=0.0)

    def test_generous_budget_does_not_change_the_answer(
        self, small_index, small_object_index
    ):
        free = best_first_knn(small_index, small_object_index, 7, 5, exact=True)
        capped = best_first_knn(
            small_index, small_object_index, 7, 5, exact=True, time_budget=60.0
        )
        assert capped.ids() == free.ids()


class TestEngineLevelBudget:
    def test_knn_time_cap(self, engine):
        with pytest.raises(DeadlineExceeded):
            engine.knn(0, 3, time_cap=0.0)
        assert engine.knn(0, 3, time_cap=60.0).ids() == engine.knn(0, 3).ids()

    def test_batch_budget_spans_the_whole_batch(self, engine):
        with pytest.raises(DeadlineExceeded):
            engine.knn_batch(range(10), 3, time_cap=0.0)
        capped = engine.knn_batch(range(10), 3, time_cap=60.0)
        assert capped.ids() == engine.knn_batch(range(10), 3).ids()


class StallingEngine:
    """A sync engine whose every kNN takes ``delay`` seconds and
    honours ``time_cap`` exactly as the real search loops do."""

    oracle = "silc"
    storage = None

    def __init__(self, inner: QueryEngine, delay: float) -> None:
        self.inner = inner
        self.delay = delay

    def knn(self, query, k, **kwargs):
        time_cap = kwargs.pop("time_cap", None)
        time.sleep(self.delay)
        if time_cap is not None and self.delay >= time_cap:
            raise DeadlineExceeded("stalled past the execution budget")
        return self.inner.knn(query, k, **kwargs)

    def knn_batch(self, queries, k, **kwargs):
        time_cap = kwargs.pop("time_cap", None)
        time.sleep(self.delay)
        if time_cap is not None and self.delay >= time_cap:
            raise DeadlineExceeded("stalled past the execution budget")
        return self.inner.knn_batch(queries, k, **kwargs)


def serve_one(request, sync_engine):
    async def go():
        async with AsyncEngine(sync_engine) as ae:
            server = SILCServer(ae)
            async with server:
                response = await server.submit(request)
            return response, server.snapshot()

    return asyncio.run(go())


class TestServerDeadline:
    def test_mid_execution_expiry_returns_aborted_expired(self, engine):
        slow = StallingEngine(engine, delay=0.2)
        request = Request(
            id=1, client="web", kind="knn", queries=(0,), k=3, deadline=0.1
        )
        response, snapshot = serve_one(request, slow)
        assert isinstance(response, Expired)
        assert response.aborted is True
        assert response.waited >= 0.2  # execution time counted, not late-delivered
        assert snapshot.expired == 1
        assert snapshot.deadline_aborts == 1

    def test_deadline_met_completes_normally(self, engine):
        slow = StallingEngine(engine, delay=0.01)
        request = Request(
            id=2, client="web", kind="knn", queries=(0,), k=3, deadline=30.0
        )
        response, snapshot = serve_one(request, slow)
        assert isinstance(response, Completed)
        assert response.degraded is False
        assert snapshot.deadline_aborts == 0

    def test_queue_expiry_is_not_flagged_aborted(self, engine):
        """A request that expired while *queued* keeps the legacy
        shape: Expired with aborted=False (nothing was cut short)."""
        async def go():
            async with AsyncEngine(engine) as ae:
                server = SILCServer(ae, clock=time.monotonic)
                async with server:
                    request = Request(
                        id=3, client="web", kind="knn", queries=(0,), k=3,
                        deadline=1e-9,
                    )
                    # Any real scheduling gap exceeds a nanosecond.
                    return await server.submit(request)

        response = asyncio.run(go())
        assert isinstance(response, Expired)
        assert response.aborted is False


class TestProtocolFlags:
    def test_aborted_and_degraded_serialize_only_when_set(self):
        plain = response_to_dict(Expired(id=1, client="c", waited=0.5))
        assert "aborted" not in plain
        aborted = response_to_dict(
            Expired(id=1, client="c", waited=0.5, aborted=True)
        )
        assert aborted["aborted"] is True

        ok = response_to_dict(
            Completed(id=2, client="c", result={}, latency=0.1, sched_delay=0)
        )
        assert "degraded" not in ok
        degraded = response_to_dict(
            Completed(
                id=2, client="c", result={}, latency=0.1, sched_delay=0,
                degraded=True,
            )
        )
        assert degraded["degraded"] is True


class TestShardTierDeadline:
    def test_router_budget_expires_and_never_returns_late(self, engine):
        from repro.shard import ShardGroup

        group = ShardGroup.from_engine(engine, 2)
        try:
            with pytest.raises(DeadlineExceeded):
                group.knn(0, 3, time_cap=1e-9)
            generous = group.knn(0, 3, time_cap=60.0)
            assert generous.ids() == group.knn(0, 3).ids()
            with pytest.raises(DeadlineExceeded):
                group.knn_batch(range(5), 3, time_cap=1e-9)
        finally:
            group.close()
