"""ServerMetrics: percentiles, counters, and the bounded sample window."""

import pytest

from repro.query.stats import QueryStats
from repro.serve import ServerMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)
        assert percentile(list(range(101)), 95) == pytest.approx(95.0)

    def test_accepts_any_iterable(self):
        assert percentile((x for x in (3.0, 1.0, 2.0)), 100) == 3.0

    def test_validates_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestServerMetrics:
    def test_counters_and_snapshot(self):
        m = ServerMetrics()
        m.record_completed("web", 0.010, 3, QueryStats(refinements=5))
        m.record_completed("web", 0.030, 0, QueryStats(refinements=2))
        m.record_shed()
        m.record_expired()
        m.record_failed()
        snap = m.snapshot(queue_depths={"web": 4}, in_flight=2)
        assert (snap.served, snap.shed, snap.expired, snap.failed) == (2, 1, 1, 1)
        assert snap.p50 == pytest.approx(0.020)
        assert snap.stats.refinements == 7
        assert snap.queue_depths == {"web": 4}
        assert snap.in_flight == 2
        assert "latency p50" in snap.format()

    def test_delay_percentile_per_client(self):
        m = ServerMetrics()
        for d in (0, 0, 32):
            m.record_completed("web", 0.001, d)
        m.record_completed("bulk", 0.5, 5000)
        assert m.delay_percentile("web", 50) == 0
        assert m.delay_percentile("bulk", 50) == 5000
        assert m.delay_percentile("absent", 95) == 0.0

    def test_sample_windows_are_bounded(self):
        """Flat memory over a long-lived server's lifetime."""
        m = ServerMetrics(window=10)
        for i in range(1000):
            m.record_completed("web", float(i), i)
        assert len(m.latencies) == 10
        assert len(m.sched_delays["web"]) == 10
        # exact lifetime counter, window-local percentiles
        assert m.served == 1000
        assert m.snapshot().p50 == pytest.approx(994.5)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            ServerMetrics(window=0)

    def test_client_set_is_lru_bounded(self):
        """Satellite: ever-fresh client ids cannot grow memory."""
        m = ServerMetrics(max_clients=3)
        for i in range(10):
            m.record_completed(f"c{i}", 0.001, i)
        assert set(m.sched_delays) == {"c7", "c8", "c9"}
        # activity refreshes recency: touching the oldest keeps it
        m.record_completed("c7", 0.001, 1)
        m.record_completed("c10", 0.001, 1)
        assert set(m.sched_delays) == {"c9", "c7", "c10"}
        # lifetime counters are exact regardless of eviction
        assert m.served == 12
        # an evicted client reads like an absent one
        assert m.delay_percentile("c0", 50) == 0.0

    def test_max_clients_validated(self):
        with pytest.raises(ValueError):
            ServerMetrics(max_clients=0)

    def test_snapshot_percentiles_agree_with_single_calls(self):
        """Satellite micro-test: the one-sort snapshot matches the
        per-point reference for every quantile."""
        m = ServerMetrics()
        for i in range(17):
            m.record_completed("web", float((i * 7) % 17), 0)
        snap = m.snapshot()
        assert snap.p50 == pytest.approx(percentile(m.latencies, 50))
        assert snap.p95 == pytest.approx(percentile(m.latencies, 95))
        assert snap.p99 == pytest.approx(percentile(m.latencies, 99))
