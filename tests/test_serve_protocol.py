"""Request/response protocol: validation and wire round-trips."""

import pytest

from repro.serve import (
    KINDS,
    Completed,
    Expired,
    Failed,
    Rejected,
    Request,
    request_from_dict,
    response_to_dict,
)


class TestRequestValidation:
    def test_kinds_are_the_documented_five(self):
        assert KINDS == ("knn", "knn_batch", "path", "distance", "stats")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            Request(id=1, client="a", kind="bogus", queries=(0,))

    def test_path_needs_source_and_target(self):
        with pytest.raises(ValueError, match="source, target"):
            Request(id=1, client="a", kind="path", queries=(0,))

    def test_knn_needs_a_query(self):
        with pytest.raises(ValueError, match="at least one query"):
            Request(id=1, client="a", kind="knn", queries=())

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline"):
            Request(id=1, client="a", kind="knn", queries=(0,), deadline=0.0)

    def test_cost_counts_engine_queries(self):
        assert Request(id=1, client="a", kind="knn", queries=(7,)).cost == 1
        assert Request(id=1, client="a", kind="knn_batch", queries=(1, 2, 3)).cost == 3
        assert Request(id=1, client="a", kind="path", queries=(0, 9)).cost == 1
        assert Request(id=1, client="a", kind="distance", queries=(0, 9)).cost == 1
        # Monitoring probes are free: they bypass admission entirely.
        assert Request(id=1, client="a", kind="stats").cost == 0

    def test_stats_kind_needs_no_queries(self):
        req = request_from_dict({"kind": "stats", "client": "ops"})
        assert req.kind == "stats"
        assert req.queries == ()


class TestWireFormat:
    def test_knn_round_trip(self):
        req = request_from_dict(
            {"id": 7, "client": "web", "kind": "knn", "query": 3, "k": 4,
             "variant": "knn_m", "exact": False, "deadline": 1.5}
        )
        assert req.queries == (3,)
        assert req.k == 4
        assert req.variant == "knn_m"
        assert req.exact is False
        assert req.deadline == 1.5

    def test_batch_and_pair_kinds(self):
        batch = request_from_dict(
            {"kind": "knn_batch", "queries": [1, 2, 3], "k": 2}
        )
        assert batch.queries == (1, 2, 3)
        pair = request_from_dict({"kind": "path", "source": 0, "target": 9})
        assert pair.queries == (0, 9)

    def test_defaults(self):
        req = request_from_dict({"kind": "knn", "query": 0})
        assert req.client == "default"
        assert req.k == 1
        assert req.exact is True
        assert req.deadline is None

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            request_from_dict([1, 2, 3])

    def test_unknown_kind_in_wire_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            request_from_dict({"kind": "teleport", "query": 0})

    @pytest.mark.parametrize(
        "response,expected",
        [
            (
                Completed(id=1, client="a", result={"ids": [3]}, latency=0.25,
                          sched_delay=7),
                {"id": 1, "client": "a", "status": "ok", "ids": [3],
                 "latency": 0.25, "sched_delay": 7},
            ),
            (
                Rejected(id=2, client="b", retry_after=0.5, reason="rate_limited"),
                {"id": 2, "client": "b", "status": "rejected",
                 "retry_after": 0.5, "reason": "rate_limited"},
            ),
            (
                Expired(id=3, client="c", waited=2.0),
                {"id": 3, "client": "c", "status": "expired", "waited": 2.0},
            ),
            (
                Failed(id=4, client="d", error="boom"),
                {"id": 4, "client": "d", "status": "error", "error": "boom"},
            ),
        ],
    )
    def test_response_records(self, response, expected):
        assert response_to_dict(response) == expected
