"""FairScheduler: chunk splitting, round-robin fairness, counted delays."""

import pytest

from repro.serve import FairScheduler, Request


def knn(client, query, rid=0):
    return Request(id=rid, client=client, kind="knn", queries=(query,), k=1)


def batch(client, n, rid=0):
    return Request(id=rid, client=client, kind="knn_batch", queries=tuple(range(n)), k=1)


class TestChunking:
    def test_batch_split_into_chunks(self):
        s = FairScheduler(chunk_size=4)
        assert s.submit(batch("bulk", 10)) == 3
        chunks = list(s.drain())
        assert [c.cost for c in chunks] == [4, 4, 2]
        assert [c.offset for c in chunks] == [0, 4, 8]
        assert [c.last for c in chunks] == [False, False, True]
        # the chunks tile the original query tuple in order
        assert sum((list(c.queries) for c in chunks), []) == list(range(10))

    def test_single_knn_is_one_chunk(self):
        s = FairScheduler(chunk_size=4)
        assert s.submit(knn("web", 3)) == 1
        [chunk] = list(s.drain())
        assert chunk.queries == (3,) and chunk.last

    def test_pair_kinds_never_split(self):
        s = FairScheduler(chunk_size=1)
        req = Request(id=1, client="a", kind="path", queries=(0, 9))
        assert s.submit(req) == 1
        [chunk] = list(s.drain())
        assert chunk.queries == (0, 9)

    def test_pair_kinds_cost_one_engine_query(self):
        """(source, target) is one query: cost must match Request.cost."""
        s = FairScheduler(chunk_size=8)
        dist = Request(id=1, client="a", kind="distance", queries=(0, 9))
        s.submit(dist)
        assert s.pending() == dist.cost == 1
        follow_up = Request(id=2, client="b", kind="knn", queries=(3,))
        s.submit(follow_up)
        s.next_chunk()  # the distance request
        assert s.dispatched == 1
        s.next_chunk()
        assert s.sched_delay(follow_up) == 1  # one query ahead, not two

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            FairScheduler(chunk_size=0)


class TestFairness:
    def test_lanes_alternate_round_robin(self):
        s = FairScheduler(chunk_size=2)
        s.submit(batch("a", 8))
        s.submit(batch("b", 8))
        order = [c.request.client for c in s.drain()]
        assert order == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_fifo_within_a_lane(self):
        s = FairScheduler(chunk_size=8)
        for i in range(4):
            s.submit(knn("a", i, rid=i))
        assert [c.request.id for c in s.drain()] == [0, 1, 2, 3]

    def test_weighted_lane_gets_proportional_service(self):
        s = FairScheduler(chunk_size=2)
        s.register("heavy", weight=3)
        s.submit(batch("heavy", 12))
        s.submit(batch("light", 4))
        order = [c.request.client for c in s.drain()]
        # per sweep: three heavy chunks, then one light chunk
        assert order[:4] == ["heavy", "heavy", "heavy", "light"]
        assert order[4:8] == ["heavy", "heavy", "heavy", "light"]

    def test_interactive_not_starved_by_bulk_backlog(self):
        """The head-of-line invariant, in counted operations."""
        s = FairScheduler(chunk_size=4)
        s.submit(batch("bulk", 400))
        # drain part of the backlog, then an interactive request lands
        for _ in range(10):
            s.next_chunk()
        interactive = knn("web", 0)
        s.submit(interactive)
        clients = []
        while s.sched_delay(interactive) == 0 and (c := s.next_chunk()):
            clients.append(c.request.client)
        # at most one bulk chunk ran before the interactive request
        assert s.sched_delay(interactive) <= 4
        assert clients.count("bulk") <= 1

    def test_sched_delay_counts_only_foreign_queries(self):
        s = FairScheduler(chunk_size=4)
        first = knn("a", 0)
        s.submit(first)
        [chunk] = [s.next_chunk()]
        assert chunk.request is first
        assert s.sched_delay(first) == 0  # nothing ran ahead of it

    def test_empty_scheduler(self):
        s = FairScheduler()
        assert s.next_chunk() is None
        assert len(s) == 0 and s.pending() == 0


class TestAccounting:
    def test_depths_and_pending_count_queries(self):
        s = FairScheduler(chunk_size=4)
        s.submit(batch("bulk", 10))
        s.submit(knn("web", 1))
        assert s.depths() == {"bulk": 10, "web": 1}
        assert s.pending() == 11
        s.next_chunk()
        assert s.pending() in (7, 10)  # one chunk (4 or 1 queries) left the queue

    def test_dispatched_serial_is_monotone(self):
        s = FairScheduler(chunk_size=4)
        s.submit(batch("bulk", 10))
        serials = []
        while s.next_chunk():
            serials.append(s.dispatched)
        assert serials == [4, 8, 10]

    def test_register_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            FairScheduler().register("a", weight=0)
