"""AsyncEngine and SILCServer: the serving pipeline end to end.

Async tests drive their own event loop with ``asyncio.run`` so the
suite has no plugin dependency.
"""

import asyncio
import io
import json

import pytest

from repro.engine import QueryEngine
from repro.query import best_first_knn
from repro.serve import (
    AdmissionController,
    AsyncEngine,
    FairScheduler,
    Request,
    SILCServer,
    serve_jsonl,
)


@pytest.fixture()
def engine(small_index, small_object_index):
    return QueryEngine(small_index, small_object_index, cache_fraction=0.05)


def knn_req(query, client="web", rid=0, k=3, deadline=None):
    # exact=False: these tests compare against library calls that use
    # the engine's non-exact default.
    return Request(id=rid, client=client, kind="knn", queries=(query,), k=k,
                   exact=False, deadline=deadline)


def batch_req(queries, client="bulk", rid=0, k=2):
    return Request(id=rid, client=client, kind="knn_batch",
                   queries=tuple(queries), k=k, exact=False)


class TestAsyncEngine:
    def test_matches_sync_engine(self, engine, small_index, small_object_index):
        async def go():
            async with AsyncEngine(engine) as ae:
                return (
                    await ae.knn(0, 4),
                    await ae.knn_batch([5, 9, 13], 2),
                    await ae.path(0, 140),
                    await ae.distance(0, 140),
                )

        result, batch, path, dist = asyncio.run(go())
        expected = best_first_knn(small_index, small_object_index, 0, 4)
        assert result.ids() == expected.ids()
        assert batch.ids() == QueryEngine(
            small_index, small_object_index
        ).knn_batch([5, 9, 13], 2).ids()
        assert path == small_index.path(0, 140)
        assert dist == pytest.approx(small_index.distance(0, 140))

    def test_many_concurrent_tasks(self, engine, small_index):
        """Satellite: concurrent use from many tasks is safe and exact."""
        queries = [(q, 1 + q % 4) for q in range(0, 120, 3)]

        async def go():
            async with AsyncEngine(engine, max_workers=4) as ae:
                return await asyncio.gather(
                    *(ae.knn(q, k, exact=True) for q, k in queries)
                )

        results = asyncio.run(go())
        reference = QueryEngine(engine.index, engine.object_index)
        for (q, k), result in zip(queries, results):
            assert result.ids() == reference.knn(q, k, exact=True).ids()
        # the shared simulator was restored after every call
        assert small_index.storage is None
        assert engine.storage.stats.accesses > 0

    def test_closed_engine_rejects_calls(self, engine):
        async def go():
            ae = AsyncEngine(engine)
            ae.close()
            with pytest.raises(RuntimeError, match="closed"):
                await ae.knn(0, 2)

        asyncio.run(go())

    def test_validates_workers(self, engine):
        with pytest.raises(ValueError):
            AsyncEngine(engine, max_workers=0)


def serve(requests, engine, **server_kwargs):
    """Run a request list through a fresh server; responses in order."""

    async def go():
        async with AsyncEngine(engine) as ae:
            server = SILCServer(ae, **server_kwargs)
            async with server:
                responses = await asyncio.gather(
                    *(server.submit(r) for r in requests)
                )
            return responses, server.snapshot()

    return asyncio.run(go())


class TestSILCServer:
    def test_knn_matches_library(self, engine, small_index, small_object_index):
        [resp], _ = serve([knn_req(7, rid=42)], engine)
        assert resp.status == "ok"
        assert resp.id == 42
        expected = best_first_knn(small_index, small_object_index, 7, 3)
        assert resp.result["ids"] == expected.ids()

    def test_batch_reassembled_across_chunks(self, engine, small_index, small_object_index):
        queries = list(range(0, 40))
        [resp], snapshot = serve(
            [batch_req(queries, rid=1)],
            engine,
            scheduler=FairScheduler(chunk_size=8),
        )
        assert resp.status == "ok"
        expected = QueryEngine(small_index, small_object_index).knn_batch(queries, 2)
        assert resp.result["ids"] == expected.ids()
        assert len(resp.result["distances"]) == len(queries)
        assert snapshot.served == 1
        assert snapshot.stats.refinements == expected.stats.refinements

    def test_path_and_distance_kinds(self, engine, small_index):
        responses, _ = serve(
            [
                Request(id=1, client="a", kind="path", queries=(0, 99)),
                Request(id=2, client="a", kind="distance", queries=(0, 99)),
            ],
            engine,
        )
        assert responses[0].result["path"] == small_index.path(0, 99)
        assert responses[1].result["distance"] == pytest.approx(
            small_index.distance(0, 99)
        )

    def test_never_fitting_request_rejected_as_too_large(self, engine):
        [resp], snapshot = serve(
            [batch_req(range(50), rid=9)],
            engine,
            admission=AdmissionController(max_in_flight=10),
        )
        assert resp.status == "rejected"
        assert resp.reason == "request_too_large"  # terminal: don't retry
        assert resp.retry_after == 0
        assert snapshot.shed == 1 and snapshot.served == 0

    def test_transient_overload_rejected_with_retry_after(self, engine):
        # each request fits alone, but not both at once
        responses, snapshot = serve(
            [batch_req(range(8), rid=1), batch_req(range(8), rid=2)],
            engine,
            admission=AdmissionController(max_in_flight=10),
        )
        statuses = sorted(r.status for r in responses)
        assert statuses == ["ok", "rejected"]
        [rejected] = [r for r in responses if r.status == "rejected"]
        assert rejected.reason == "in_flight_cap"
        assert rejected.retry_after > 0
        assert snapshot.shed == 1 and snapshot.served == 1

    def test_cancelled_submit_releases_admission_budget(self, engine):
        """A caller timeout must not leak in-flight budget forever."""

        async def go():
            async with AsyncEngine(engine) as ae:
                server = SILCServer(
                    ae,
                    scheduler=FairScheduler(chunk_size=2),
                    admission=AdmissionController(max_in_flight=10),
                )
                async with server:
                    task = asyncio.create_task(
                        server.submit(batch_req(range(10), rid=1))
                    )
                    await asyncio.sleep(0)  # admitted, chunks queued
                    assert server.admission.in_flight == 10
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    assert server.admission.in_flight == 0
                    # the server still serves new work afterwards
                    response = await server.submit(knn_req(0, rid=2))
                    assert response.status == "ok"
                    assert not server.scheduler.sched_delays  # no leak
                return server.snapshot()

        snapshot = asyncio.run(go())
        assert snapshot.in_flight == 0

    def test_queued_deadline_expires(self, engine):
        ticks = iter(range(1000))

        def clock():  # one full second per observation: everything is late
            return float(next(ticks))

        responses, snapshot = serve(
            [knn_req(0, rid=1, deadline=0.5), knn_req(5, rid=2)],
            engine,
            clock=clock,
        )
        assert responses[0].status == "expired"
        assert responses[0].waited > 0.5
        assert responses[1].status == "ok"
        assert snapshot.expired == 1 and snapshot.served == 1

    def test_query_error_surfaces_as_failed(self, engine):
        bad = knn_req(10**9, rid=3)  # vertex far out of range
        [resp], snapshot = serve([bad], engine)
        assert resp.status == "error"
        assert "1000000000" in resp.error
        assert snapshot.failed == 1

    def test_failed_batch_drops_remaining_chunks(self, engine):
        queries = [10**9] + list(range(30))  # first chunk raises
        [resp], snapshot = serve(
            [batch_req(queries, rid=4)],
            engine,
            scheduler=FairScheduler(chunk_size=4),
        )
        assert resp.status == "error"
        assert snapshot.failed == 1 and snapshot.served == 0
        # the admitted cost was released exactly once
        assert snapshot.in_flight == 0

    def test_admission_released_after_completion(self, engine):
        requests = [knn_req(q, rid=q) for q in range(6)]
        responses, snapshot = serve(
            requests, engine, admission=AdmissionController(max_in_flight=1024)
        )
        assert all(r.status == "ok" for r in responses)
        assert snapshot.in_flight == 0
        assert snapshot.p95 >= snapshot.p50 >= 0

    def test_submit_requires_started_server(self, engine):
        async def go():
            async with AsyncEngine(engine) as ae:
                server = SILCServer(ae)
                with pytest.raises(RuntimeError, match="not started"):
                    await server.submit(knn_req(0))

        asyncio.run(go())


class TestServeJsonl:
    def test_round_trip(self, engine, small_index, small_object_index):
        lines = [
            {"id": 1, "client": "a", "kind": "knn", "query": 0, "k": 2},
            {"id": 2, "client": "b", "kind": "distance", "source": 0, "target": 90},
            {"kind": "nope"},
            {"id": 3, "client": "b", "kind": "knn_batch", "queries": [1, 2], "k": 1},
        ]
        in_stream = io.StringIO("\n".join(json.dumps(l) for l in lines) + "\n# comment\n\n")
        out_stream = io.StringIO()

        async def go():
            async with AsyncEngine(engine) as ae:
                return await serve_jsonl(SILCServer(ae), in_stream, out_stream)

        snapshot = asyncio.run(go())
        records = [json.loads(l) for l in out_stream.getvalue().splitlines()]
        by_id = {r["id"]: r for r in records if "id" in r}
        assert by_id[1]["status"] == "ok"
        assert by_id[1]["ids"] == best_first_knn(
            small_index, small_object_index, 0, 2, exact=True
        ).ids()
        assert by_id[2]["distance"] == pytest.approx(small_index.distance(0, 90))
        assert by_id[3]["status"] == "ok"
        [bad] = [r for r in records if r["status"] == "error"]
        assert "bad request" in bad["error"]
        assert snapshot.served == 3
