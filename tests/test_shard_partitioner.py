"""Morton-range partitioning: boundaries, covers, object splitting."""

import numpy as np
import pytest

from repro import SILCIndex, road_like_network
from repro.datasets import random_vertex_objects
from repro.geometry.morton import block_cells, range_blocks
from repro.objects.model import (
    EdgePosition,
    ExtentPosition,
    ObjectSet,
    SpatialObject,
    position_parts,
    position_point,
)
from repro.shard import ShardMap, split_objects


@pytest.fixture(scope="module")
def built():
    net = road_like_network(120, seed=3)
    index = SILCIndex.build(net)
    return net, index


class TestRangeBlocks:
    def test_full_grid_is_one_block(self):
        assert range_blocks(0, 16) == [(0, 2)]

    def test_unaligned_range_decomposes(self):
        # [3, 9): cell 3, block [4, 8) at level 1, cell 8.
        assert range_blocks(3, 9) == [(3, 0), (4, 1), (8, 0)]

    def test_blocks_tile_the_range_exactly(self):
        for lo, hi in [(0, 7), (5, 64), (13, 57), (100, 101)]:
            blocks = range_blocks(lo, hi)
            covered = []
            for code, level in blocks:
                assert code % block_cells(level) == 0, "blocks must be aligned"
                covered.extend(range(code, code + block_cells(level)))
            assert covered == list(range(lo, hi))

    def test_empty_range(self):
        assert range_blocks(5, 5) == []

    def test_reversed_bounds_raise(self):
        with pytest.raises(ValueError, match="reversed"):
            range_blocks(9, 3)

    def test_out_of_grid_raises(self):
        with pytest.raises(ValueError, match="out of grid"):
            range_blocks(-1, 4)


class TestShardMap:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_boundaries_span_grid_strictly_increasing(self, built, num_shards):
        _, index = built
        smap = ShardMap.from_index(index, num_shards)
        b = smap.boundaries
        assert b[0] == 0 and b[-1] == 4**smap.order
        assert (np.diff(b) > 0).all()
        assert smap.num_shards == num_shards

    def test_vertices_partition_the_network(self, built):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        union = np.concatenate([smap.vertices(s) for s in range(4)])
        assert sorted(union.tolist()) == list(range(net.num_vertices))

    def test_assignment_matches_code_ranges(self, built):
        _, index = built
        smap = ShardMap.from_index(index, 4)
        for v, code in enumerate(index.vertex_codes):
            s = int(smap.assign[v])
            assert smap.boundaries[s] <= code < smap.boundaries[s + 1]
            assert smap.shard_of_code(int(code)) == s

    def test_near_equal_population(self, built):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        sizes = [smap.vertices(s).size for s in range(4)]
        # Equal-population cuts: no shard dominated by duplicates here,
        # so every shard lands within a loose factor of the mean.
        assert min(sizes) >= 1
        assert max(sizes) <= 2 * net.num_vertices / 4 + 1

    def test_cover_blocks_tile_each_range(self, built):
        _, index = built
        smap = ShardMap.from_index(index, 4)
        for s in range(4):
            lo, hi = int(smap.boundaries[s]), int(smap.boundaries[s + 1])
            blocks = smap.cover_blocks(s)
            assert sum(block_cells(level) for _, level in blocks) == hi - lo
            code = lo
            for block_code, level in blocks:
                assert block_code == code, "blocks must be contiguous"
                assert block_code % block_cells(level) == 0
                code += block_cells(level)
            assert code == hi

    def test_cover_blocks_cached(self, built):
        _, index = built
        smap = ShardMap.from_index(index, 2)
        assert smap.cover_blocks(0) is smap.cover_blocks(0)

    def test_shard_of_point_agrees_with_vertex_assignment(self, built):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        for v in range(0, net.num_vertices, 17):
            p = net.vertex_point(v)
            assert smap.shard_of_point(index.embedding, p.x, p.y) == int(
                smap.assign[v]
            )

    def test_single_shard_owns_everything(self, built):
        _, index = built
        smap = ShardMap.from_index(index, 1)
        assert (smap.assign == 0).all()

    def test_more_shards_than_distinct_codes_degrades_gracefully(self):
        codes = np.array([5, 5, 5, 5], dtype=np.int64)
        smap = ShardMap.from_codes(codes, 3, order=2)
        assert smap.num_shards == 3
        assert (np.diff(smap.boundaries) > 0).all()

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ShardMap(np.array([0, 8, 8, 16]), np.zeros(1), order=2)
        with pytest.raises(ValueError, match="span"):
            ShardMap(np.array([1, 16]), np.zeros(1), order=2)


class TestSplitObjects:
    def test_vertex_objects_follow_their_vertex(self, built):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        objects = random_vertex_objects(net, count=30, seed=11)
        per_shard, has_edge = split_objects(net, objects, index.embedding, smap)
        assert sum(len(objs) for objs in per_shard) == len(objects)
        assert not any(has_edge)
        for s, objs in enumerate(per_shard):
            for obj in objs:
                assert int(smap.assign[obj.position.vertex]) == s

    def test_edge_parts_set_the_edge_flag(self, built):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        a, b, _ = next(net.iter_edges())
        obj = SpatialObject(
            oid=0,
            position=EdgePosition(a, b, 0.5),
            point=position_point(net, EdgePosition(a, b, 0.5)),
        )
        per_shard, has_edge = split_objects(
            net, ObjectSet([obj]), index.embedding, smap
        )
        populated = [s for s, objs in enumerate(per_shard) if objs]
        assert len(populated) == 1
        assert has_edge[populated[0]]

    def test_boundary_straddling_extent_is_replicated(self, built):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        # Pick two vertices assigned to different shards and build one
        # extent spanning both.
        v_a = int(smap.vertices(0)[0])
        v_b = int(smap.vertices(3)[0])
        from repro.objects.model import VertexPosition

        position = ExtentPosition((VertexPosition(v_a), VertexPosition(v_b)))
        obj = SpatialObject(
            oid=7, position=position, point=position_point(net, position)
        )
        per_shard, _ = split_objects(
            net, ObjectSet([obj]), index.embedding, smap
        )
        holders = [s for s, objs in enumerate(per_shard) if objs]
        assert holders == [0, 3]
        for s in holders:
            # The replica is the *whole* object, not a cropped part.
            assert len(position_parts(per_shard[s][0].position)) == 2
