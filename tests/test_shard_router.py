"""Property-style check: sharded kNN == unsharded exact kNN.

The acceptance bar of the sharded tier: for random queries, any k and
any shard count, the scatter-gathered answer must be *identical* to
the single-process exact engine -- including objects straddling shard
boundaries, edge-positioned objects, and extents.
"""

import dataclasses

import numpy as np
import pytest

from repro import ObjectIndex, SILCIndex, road_like_network
from repro.datasets import random_edge_objects, random_vertex_objects
from repro.engine import QueryEngine
from repro.geometry.point import Point
from repro.objects.model import (
    EdgePosition,
    ExtentPosition,
    ObjectSet,
    SpatialObject,
    VertexPosition,
    position_point,
)
from repro.shard import ShardGroup, ShardMap


def ranked(result):
    """Comparable (distance, oid) pairs, rounded past float noise."""
    return [(round(n.distance, 9), n.oid) for n in result.neighbors]


@pytest.fixture(scope="module")
def setup():
    net = road_like_network(150, seed=5)
    index = SILCIndex.build(net)
    smap = ShardMap.from_index(index, 4)

    objects = list(random_vertex_objects(net, count=40, seed=7))
    objects += [
        dataclasses.replace(o, oid=o.oid + 1000)
        for o in random_edge_objects(net, count=12, seed=8)
    ]
    # One extent deliberately straddling a shard boundary: a part in
    # shard 0 and a part in shard 3, under a single global oid.
    v_a = int(smap.vertices(0)[0])
    v_b = int(smap.vertices(3)[0])
    extent = ExtentPosition((VertexPosition(v_a), VertexPosition(v_b)))
    objects.append(
        SpatialObject(
            oid=2000, position=extent, point=position_point(net, extent)
        )
    )
    object_index = ObjectIndex(net, ObjectSet(objects), index.embedding)
    engine = QueryEngine(index, object_index)
    return net, index, engine


@pytest.fixture(scope="module")
def groups(setup):
    _, _, engine = setup
    opened = {
        shards: ShardGroup.from_engine(engine, shards) for shards in (1, 2, 4)
    }
    yield opened
    for group in opened.values():
        group.close()


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_random_vertex_queries(self, setup, groups, num_shards, k):
        net, _, engine = setup
        group = groups[num_shards]
        rng = np.random.default_rng(17)
        for q in rng.choice(net.num_vertices, size=8, replace=False):
            expected = ranked(engine.knn(int(q), k, exact=True))
            assert ranked(group.knn(int(q), k)) == expected

    def test_edge_position_query(self, setup, groups):
        net, _, engine = setup
        a, b, _ = next(net.iter_edges())
        query = EdgePosition(a, b, 0.4)
        for group in groups.values():
            assert ranked(group.knn(query, 5)) == ranked(
                engine.knn(query, 5, exact=True)
            )

    def test_free_point_query(self, setup, groups):
        net, _, engine = setup
        p = net.vertex_point(42)
        query = Point(p.x + 1e-4, p.y - 1e-4)
        for group in groups.values():
            assert ranked(group.knn(query, 4)) == ranked(
                engine.knn(query, 4, exact=True)
            )

    def test_boundary_extent_found_once(self, setup, groups):
        """The straddling extent surfaces exactly once (deduplicated)."""
        net, _, engine = setup
        query = 0
        k = len(engine.object_index.objects)
        result = groups[4].knn(query, k)
        oids = [n.oid for n in result.neighbors]
        assert oids.count(2000) == 1
        assert ranked(result) == ranked(engine.knn(query, k, exact=True))

    def test_variants_agree(self, setup, groups):
        _, _, engine = setup
        for variant in ("knn", "inn"):
            assert ranked(groups[2].knn(33, 5, variant=variant)) == ranked(
                engine.knn(33, 5, exact=True)
            )

    def test_knn_batch_matches(self, setup, groups):
        _, _, engine = setup
        queries = [3, 59, 101]
        batch = groups[4].knn_batch(queries, 3)
        assert len(batch.results) == 3
        for q, result in zip(queries, batch.results):
            assert ranked(result) == ranked(engine.knn(q, 3, exact=True))

    def test_stats_accounting_consistent(self, groups):
        stats = groups[4].stats
        assert stats.queries > 0
        assert (
            stats.shards_visited + stats.shards_pruned
            == stats.shards_considered
        )
        assert 0.0 <= stats.prune_rate <= 1.0


class TestPureVertexLambdaPruning:
    def test_lambda_bound_prunes_on_pure_vertex_shards(self):
        """With only vertex objects, the quadtree bound gets exercised
        and the answers still match exactly."""
        net = road_like_network(150, seed=5)
        index = SILCIndex.build(net)
        objects = random_vertex_objects(net, count=50, seed=21)
        engine = QueryEngine(index, ObjectIndex(net, objects, index.embedding))
        with ShardGroup.from_engine(engine, 4) as group:
            assert not any(group.router.has_edge[s] for s in group.workers)
            for q in (0, 50, 149):
                assert ranked(group.knn(q, 3)) == ranked(
                    engine.knn(q, 3, exact=True)
                )
            assert group.stats.bound_probes > 0


class TestWorkerLifecycle:
    def test_ping_and_close_idempotent(self, setup):
        _, _, engine = setup
        group = ShardGroup.from_engine(engine, 2)
        assert sorted(group.ping()) == sorted(group.workers)
        group.close()
        group.close()
        for worker in group.workers.values():
            assert not worker.process.is_alive()
        assert not group.directory.exists()

    def test_worker_error_is_raised_in_parent(self, setup):
        _, _, engine = setup
        with ShardGroup.from_engine(engine, 2) as group:
            worker = next(iter(group.workers.values()))
            with pytest.raises(RuntimeError, match="unknown request"):
                worker.request(("bogus",))
            # The worker survives a bad request and keeps serving.
            assert worker.ping() == worker.shard_id
