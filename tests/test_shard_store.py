"""Sharded store layout: save_shard/load_shard and the stitched store."""

import numpy as np
import pytest

from repro import SILCIndex, road_like_network
from repro.shard import ShardMap
from repro.silc.store import (
    COLUMNS,
    FlatStore,
    ShardedFlatStore,
    shard_dirname,
)


@pytest.fixture(scope="module")
def built():
    net = road_like_network(100, seed=9)
    index = SILCIndex.build(net)
    return net, index


def tables_equal(a, b) -> bool:
    return (
        np.array_equal(a.codes, b.codes)
        and np.array_equal(a.levels, b.levels)
        and np.array_equal(a.colors, b.colors)
        and np.array_equal(a.lam_min, b.lam_min)
        and np.array_equal(a.lam_max, b.lam_max)
    )


class TestShardSlices:
    def test_save_load_round_trip(self, built, tmp_path):
        _, index = built
        smap = ShardMap.from_index(index, 3)
        for shard in range(3):
            members = smap.vertices(shard)
            index.store.save_shard(tmp_path, shard, members)
            vertices, fragment = FlatStore.load_shard(tmp_path, shard)
            assert np.array_equal(vertices, members)
            for i, v in enumerate(vertices):
                assert tables_equal(fragment.table(i), index.store.table(int(v)))

    def test_mmap_load_is_memmap_backed(self, built, tmp_path):
        _, index = built
        smap = ShardMap.from_index(index, 2)
        index.store.save_shard(tmp_path, 0, smap.vertices(0))
        _, fragment = FlatStore.load_shard(tmp_path, 0, mmap=True)
        for name in COLUMNS:
            assert isinstance(getattr(fragment, name), np.memmap)

    def test_shard_dirname(self):
        assert shard_dirname(3) == "shard_0003"
        with pytest.raises(ValueError):
            shard_dirname(-1)


class TestShardedIndex:
    def test_sharded_round_trip_all_tables(self, built, tmp_path):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        index.save_sharded(tmp_path, smap)
        loaded = SILCIndex.load_sharded(tmp_path, net, mmap=False)
        assert isinstance(loaded.store, ShardedFlatStore)
        assert np.array_equal(loaded.vertex_codes, index.vertex_codes)
        assert loaded.store.total_blocks == index.store.total_blocks
        for v in range(net.num_vertices):
            assert tables_equal(loaded.store.table(v), index.store.table(v))

    def test_primary_resident_others_mapped(self, built, tmp_path):
        net, index = built
        smap = ShardMap.from_index(index, 3)
        index.save_sharded(tmp_path, smap)
        loaded = SILCIndex.load_sharded(tmp_path, net, primary=1, mmap=True)
        fragments = loaded.store.shards
        assert not isinstance(fragments[1].codes, np.memmap)
        assert isinstance(fragments[0].codes, np.memmap)
        assert isinstance(fragments[2].codes, np.memmap)

    def test_column_arrays_reconstruct_global_order(self, built, tmp_path):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        index.save_sharded(tmp_path, smap)
        loaded = SILCIndex.load_sharded(tmp_path, net, mmap=False)
        rebuilt = loaded.store.column_arrays()
        original = index.store.column_arrays()
        for name in COLUMNS:
            assert np.array_equal(rebuilt[name], original[name])

    def test_queries_identical_through_sharded_store(self, built, tmp_path):
        net, index = built
        smap = ShardMap.from_index(index, 4)
        index.save_sharded(tmp_path, smap)
        loaded = SILCIndex.load_sharded(tmp_path, net, primary=0)
        for s, t in [(0, 57), (13, 92), (44, 3)]:
            assert loaded.distance(s, t) == pytest.approx(index.distance(s, t))
            assert loaded.path(s, t) == index.path(s, t)

    def test_bad_primary_rejected(self, built, tmp_path):
        net, index = built
        smap = ShardMap.from_index(index, 2)
        index.save_sharded(tmp_path, smap)
        with pytest.raises(ValueError, match="out of range"):
            SILCIndex.load_sharded(tmp_path, net, primary=5)

    def test_misaligned_fragments_rejected(self, built):
        _, index = built
        store = index.store
        # One fragment holding every table, but an assignment claiming
        # two shards: table counts cannot match.
        n = store.num_tables
        with pytest.raises(ValueError, match="tables for"):
            ShardedFlatStore(
                [store],
                np.array([0] * (n - 1) + [1]),
                np.arange(n),
            )
