"""Shard worker supervision: crash detection, respawn, replay, policies.

The acceptance bar (docs/ARCHITECTURE.md invariant): fault handling
never changes answers, only availability and latency.  A worker killed
mid-workload must yield, per policy, either the identical exact answer
(``respawn``/``failover``), a flagged partial answer (``degrade``), or
a typed error (``error``) -- never a hang, never a silently wrong
result.
"""

import time

import pytest

from repro import ObjectIndex, SILCIndex, road_like_network
from repro.datasets import random_vertex_objects
from repro.engine import QueryEngine
from repro.errors import ShardUnavailable, WorkerDied
from repro.faults import FaultInjector
from repro.shard import ShardGroup, SupervisionPolicy

NUM_SHARDS = 4
K = 3


def ranked(result):
    return [(round(n.distance, 9), n.oid) for n in result.neighbors]


@pytest.fixture(scope="module")
def setup():
    net = road_like_network(150, seed=5)
    index = SILCIndex.build(net)
    objects = random_vertex_objects(net, count=40, seed=7)
    object_index = ObjectIndex(net, objects, index.embedding)
    engine = QueryEngine(index, object_index)
    return net, engine


def make_group(engine, policy, injector=None, max_retries=2):
    return ShardGroup.from_engine(
        engine, NUM_SHARDS, on_failure=policy, max_retries=max_retries,
        fault_injector=injector,
    )


def queries_hitting(group, shard, count):
    """Vertices inside ``shard``: their queries visit it first
    (Euclidean bound zero), making kill ordinals deterministic."""
    vertices = group.shard_map.vertices(shard)
    return [int(v) for v in vertices[:count]]


class TestRespawnPolicy:
    def test_kill_mid_workload_recovers_identical_answers(self, setup):
        _, engine = setup
        injector = FaultInjector()
        group = make_group(engine, "respawn", injector)
        try:
            shard = group.router.shards[0]
            injector.kill_worker_at(shard, 2)
            queries = queries_hitting(group, shard, 5)
            expected = [ranked(engine.knn(q, K, exact=True)) for q in queries]
            got = [ranked(group.knn(q, K)) for q in queries]
            assert got == expected
            assert injector.fired("worker_kill") == 1
            stats = group.supervisor.stats
            assert stats.worker_crashes >= 1
            assert stats.respawns >= 1
            assert stats.retries >= 1
            # The shard healed: a fresh worker answers its pings.
            assert group.health_check()[shard] is True
        finally:
            group.close()

    def test_externally_killed_worker_heals_on_next_query(self, setup):
        _, engine = setup
        group = make_group(engine, "respawn")
        try:
            shard = group.router.shards[0]
            group.workers[shard].process.kill()
            group.workers[shard].process.join(5.0)
            assert group.health_check()[shard] is False
            query = queries_hitting(group, shard, 1)[0]
            expected = ranked(engine.knn(query, K, exact=True))
            assert ranked(group.knn(query, K)) == expected
            assert group.health_check()[shard] is True
        finally:
            group.close()

    def test_retries_exhausted_falls_over_to_unsharded_engine(self, setup):
        """When every respawn attempt is immediately re-killed, the
        router still answers -- exactly -- on the fallback engine."""
        _, engine = setup
        injector = FaultInjector()
        group = make_group(engine, "respawn", injector, max_retries=1)
        try:
            shard = group.router.shards[0]
            # Kill the original send AND the post-respawn replay.
            injector.kill_worker_at(shard, 1).kill_worker_at(shard, 2)
            query = queries_hitting(group, shard, 1)[0]
            result = group.knn(query, K)
            assert ranked(result) == ranked(engine.knn(query, K, exact=True))
            assert result.stats.extras.get("failover") is True
            assert group.supervisor.stats.failovers == 1
        finally:
            group.close()


class TestFailoverPolicy:
    def test_immediate_failover_identical_answers(self, setup):
        _, engine = setup
        injector = FaultInjector()
        group = make_group(engine, "failover", injector)
        try:
            shard = group.router.shards[0]
            injector.kill_worker_at(shard, 1)
            query = queries_hitting(group, shard, 1)[0]
            result = group.knn(query, K)
            assert ranked(result) == ranked(engine.knn(query, K, exact=True))
            assert result.stats.extras.get("failover") is True
            assert group.supervisor.stats.failovers == 1
        finally:
            group.close()


class TestDegradePolicy:
    def test_degraded_answer_is_flagged_and_never_wrong(self, setup):
        _, engine = setup
        injector = FaultInjector()
        group = make_group(engine, "degrade", injector)
        try:
            shard = group.router.shards[0]
            injector.kill_worker_at(shard, 1)
            query = queries_hitting(group, shard, 1)[0]
            result = group.knn(query, K)
            assert result.stats.extras.get("degraded_shards") == [shard]
            assert group.supervisor.stats.degraded_responses == 1
            # Partial, never wrong: every neighbor it did return carries
            # the object's true exact distance (it appears in the full
            # exact ranking over the complete object set).
            everything = ranked(
                engine.knn(query, len(engine.object_index.objects), exact=True)
            )
            assert set(ranked(result)) <= set(everything)
            # The background respawn heals the shard; answers return to
            # the full exact top k without operator action.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if group.health_check().get(shard):
                    break
                time.sleep(0.05)
            assert group.health_check()[shard] is True
            assert ranked(group.knn(query, K)) == ranked(
                engine.knn(query, K, exact=True)
            )
        finally:
            group.close()


class TestErrorPolicy:
    def test_error_policy_surfaces_shard_unavailable(self, setup):
        _, engine = setup
        injector = FaultInjector()
        group = make_group(engine, "error", injector)
        try:
            shard = group.router.shards[0]
            injector.kill_worker_at(shard, 1)
            query = queries_hitting(group, shard, 1)[0]
            with pytest.raises(ShardUnavailable):
                group.knn(query, K)
        finally:
            group.close()


class TestHangProofing:
    def test_dead_worker_raises_promptly_instead_of_hanging(self, setup):
        _, engine = setup
        group = make_group(engine, "error")
        try:
            shard = group.router.shards[0]
            worker = group.workers[shard]
            worker.process.kill()
            worker.process.join(5.0)
            t0 = time.monotonic()
            with pytest.raises(WorkerDied):
                worker.request(("ping",))
            assert time.monotonic() - t0 < 5.0
        finally:
            group.close()

    def test_close_with_dead_workers_does_not_hang(self, setup):
        _, engine = setup
        group = make_group(engine, "respawn")
        for worker in group.workers.values():
            worker.process.kill()
        t0 = time.monotonic()
        group.close()
        assert time.monotonic() - t0 < 30.0
        group.close()  # idempotent

    def test_stop_on_dead_worker_is_quiet(self, setup):
        _, engine = setup
        group = make_group(engine, "respawn")
        try:
            worker = next(iter(group.workers.values()))
            worker.kill()
            worker.stop()  # must not raise or hang
        finally:
            group.close()


class TestSupervisionPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            SupervisionPolicy(on_failure="panic")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SupervisionPolicy(max_retries=-1)

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = SupervisionPolicy(
            backoff_base=0.1, backoff_cap=1.0, jitter=0.25
        )
        assert policy.backoff(1, 0) == policy.backoff(1, 0)
        for shard in range(4):
            delays = [policy.backoff(n, shard) for n in range(1, 8)]
            # Grows until the cap, never past cap * (1 + jitter).
            assert all(d <= 1.0 * 1.25 + 1e-12 for d in delays)
            assert delays[1] > delays[0]
        # Jitter de-syncs concurrent respawns of different shards.
        assert policy.backoff(1, 0) != policy.backoff(1, 1)
