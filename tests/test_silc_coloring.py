"""Unit tests for repro.silc.coloring (shortest-path maps)."""

import numpy as np
import pytest

from repro.network import shortest_path_tree
from repro.silc import shortest_path_map
from repro.silc.coloring import shortest_path_maps


class TestShortestPathMap:
    def test_colors_are_first_hops(self, small_net):
        spm = shortest_path_map(small_net, 0)
        tree = shortest_path_tree(small_net, 0)
        for v in range(1, small_net.num_vertices):
            assert spm.colors[v] == tree.path_to(v)[1]

    def test_source_color_is_self(self, small_net):
        spm = shortest_path_map(small_net, 42)
        assert spm.colors[42] == 42

    def test_colors_are_neighbors_of_source(self, small_net):
        spm = shortest_path_map(small_net, 10)
        neighbors = {v for v, _ in small_net.neighbors(10)}
        others = [c for v, c in enumerate(spm.colors) if v != 10]
        assert set(others) <= neighbors

    def test_num_regions_bounded_by_degree(self, small_net):
        spm = shortest_path_map(small_net, 10)
        # regions = used first hops (<= out degree) + the source itself
        assert spm.num_regions() <= small_net.out_degree(10) + 1

    def test_ratios_at_least_one_for_metric_networks(self, small_net):
        """Network distance >= Euclidean distance on metric networks."""
        spm = shortest_path_map(small_net, 5)
        assert np.all(spm.ratios >= 1.0 - 1e-9)

    def test_ratio_times_euclidean_is_distance(self, small_net, small_dist):
        spm = shortest_path_map(small_net, 7)
        for v in range(small_net.num_vertices):
            if v == 7:
                continue
            d_e = small_net.euclidean(7, v)
            assert spm.ratios[v] * d_e == pytest.approx(
                small_dist[7, v], rel=1e-9
            )

    def test_dist_matches_matrix(self, small_net, small_dist):
        spm = shortest_path_map(small_net, 3)
        np.testing.assert_allclose(spm.dist, small_dist[3], rtol=1e-12)


class TestStreaming:
    def test_streams_all_sources(self, small_net):
        sources = [s.source for s in shortest_path_maps(small_net, chunk_size=32)]
        assert sources == list(range(small_net.num_vertices))

    def test_subset_of_sources(self, small_net):
        maps = list(shortest_path_maps(small_net, sources=[4, 8]))
        assert [m.source for m in maps] == [4, 8]

    def test_streamed_equals_single(self, small_net):
        streamed = next(iter(shortest_path_maps(small_net, sources=[6])))
        single = shortest_path_map(small_net, 6)
        np.testing.assert_array_equal(streamed.colors, single.colors)
        np.testing.assert_allclose(streamed.ratios, single.ratios)


class TestPathCoherence:
    def test_neighboring_vertices_often_share_colors(self, small_net):
        """The spatial-contiguity property SILC compresses (p.12).

        For a planar road-like network, the overwhelming majority of
        adjacent vertex pairs must share their first hop from a distant
        source -- that is what makes the quadtree small.
        """
        spm = shortest_path_map(small_net, 0)
        same = 0
        total = 0
        for u, v, _ in small_net.iter_edges():
            if u == 0 or v == 0:
                continue
            total += 1
            if spm.colors[u] == spm.colors[v]:
                same += 1
        assert same / total > 0.7
