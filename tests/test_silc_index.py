"""Unit tests for the SILC index: paths, intervals, bounds, persistence."""

import math

import numpy as np
import pytest

from repro.geometry.morton import block_cells, morton_encode
from repro.network import DisconnectedNetwork, SpatialNetwork, VertexNotFound
from repro.silc import SILCIndex


class TestBuild:
    def test_requires_strong_connectivity(self):
        net = SpatialNetwork([0.0, 1.0], [0.0, 0.0], [(0, 1, 1.0)])
        with pytest.raises(DisconnectedNetwork):
            SILCIndex.build(net)

    def test_one_table_per_vertex(self, small_net, small_index):
        assert len(small_index.tables) == small_net.num_vertices

    def test_tables_nonempty(self, small_index):
        assert all(len(t) > 0 for t in small_index.tables)

    def test_progress_callback(self, grid_net):
        calls = []
        SILCIndex.build(grid_net, progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (grid_net.num_vertices, grid_net.num_vertices)
        assert len(calls) == grid_net.num_vertices

    def test_partial_build(self, grid_net):
        idx = SILCIndex.build(grid_net, sources=[0, 5])
        assert len(idx.tables[0]) > 0
        assert len(idx.tables[5]) > 0
        assert len(idx.tables[1]) == 0

    def test_table_count_mismatch_rejected(self, small_net, small_index):
        with pytest.raises(ValueError):
            SILCIndex(
                small_net,
                small_index.embedding,
                small_index.vertex_codes,
                small_index.tables[:-1],
            )


class TestNextHopAndPaths:
    def test_next_hop_matches_dijkstra(self, small_net, small_index, small_dist):
        from repro.network import shortest_path_tree

        tree = shortest_path_tree(small_net, 0)
        for v in range(1, small_net.num_vertices):
            assert small_index.next_hop(0, v) == tree.path_to(v)[1]

    def test_next_hop_to_self(self, small_index):
        assert small_index.next_hop(4, 4) == 4

    def test_path_endpoints(self, small_index):
        path = small_index.path(3, 50)
        assert path[0] == 3 and path[-1] == 50

    def test_path_edges_exist_and_sum_to_distance(
        self, small_net, small_index, small_dist
    ):
        path = small_index.path(3, 50)
        total = sum(small_net.edge_weight(a, b) for a, b in zip(path, path[1:]))
        assert total == pytest.approx(small_dist[3, 50], rel=1e-9)

    def test_trivial_path(self, small_index):
        assert small_index.path(9, 9) == [9]

    def test_distance_matches_matrix(self, small_index, small_dist, rng):
        n = small_dist.shape[0]
        for _ in range(60):
            u, v = map(int, rng.integers(0, n, 2))
            assert small_index.distance(u, v) == pytest.approx(
                small_dist[u, v], rel=1e-9, abs=1e-12
            )

    def test_vertex_validation(self, small_index):
        with pytest.raises(VertexNotFound):
            small_index.next_hop(0, 10_000)


class TestIntervals:
    def test_interval_contains_true_distance(self, small_index, small_dist, rng):
        n = small_dist.shape[0]
        for _ in range(100):
            u, v = map(int, rng.integers(0, n, 2))
            iv = small_index.interval_from(u, v)
            assert iv.lo <= small_dist[u, v] <= iv.hi

    def test_interval_to_self_is_zero(self, small_index):
        iv = small_index.interval_from(8, 8)
        assert iv.is_exact and iv.lo == 0.0

    def test_interval_lower_bound_at_least_euclidean(
        self, small_net, small_index, rng
    ):
        """On metric networks, lambda_min >= 1."""
        n = small_net.num_vertices
        for _ in range(50):
            u, v = map(int, rng.integers(0, n, 2))
            if u == v:
                continue
            iv = small_index.interval_from(u, v)
            assert iv.hi >= small_net.euclidean(u, v) * (1 - 1e-9)


class TestBlockBounds:
    def test_block_bound_lower_bounds_all_vertices(
        self, small_net, small_index, small_dist
    ):
        """For any block, bound <= d(u, v) for every vertex v inside."""
        emb = small_index.embedding
        codes = small_index.vertex_codes
        for level in (2, 4):
            cells = block_cells(level)
            for u in (0, 33, 77):
                for v in range(small_net.num_vertices):
                    code = int(codes[v]) - int(codes[v]) % cells
                    bound = small_index.block_lower_bound(u, code, level)
                    assert bound <= small_dist[u, v] + 1e-9

    def test_block_bound_of_empty_region_is_inf(self, small_index):
        # The far corner of the (padded square) grid is empty of
        # vertices for this network; craft a cell there.
        emb = small_index.embedding
        top = emb.cells_per_side - 1
        code = morton_encode(top, top)
        bound = small_index.block_lower_bound(0, code, 0)
        # either inf (empty) or a real bound if a vertex occupies it
        if small_index.tables[0].locate(code) == -1:
            assert math.isinf(bound)


class TestStorageStats:
    def test_total_blocks_consistent(self, small_index):
        assert small_index.total_blocks() == sum(
            len(t) for t in small_index.tables
        )
        assert small_index.blocks_per_vertex().sum() == small_index.total_blocks()

    def test_storage_bytes(self, small_index):
        assert small_index.storage_bytes(16) == small_index.total_blocks() * 16

    def test_attach_storage_validates_layout(self, small_index, grid_index):
        sim = grid_index.make_storage()
        with pytest.raises(ValueError):
            small_index.attach_storage(sim)

    def test_page_accounting_on_queries(self, small_index):
        sim = small_index.make_storage(cache_fraction=0.05)
        small_index.attach_storage(sim)
        try:
            before = sim.stats.accesses
            small_index.distance(0, 100)
            assert sim.stats.accesses > before
        finally:
            small_index.detach_storage()

    def test_detach_stops_accounting(self, small_index):
        sim = small_index.make_storage()
        small_index.attach_storage(sim)
        small_index.detach_storage()
        before = sim.stats.accesses
        small_index.distance(0, 50)
        assert sim.stats.accesses == before


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, small_net, small_index, rng):
        path = tmp_path / "index.npz"
        small_index.save(path)
        loaded = SILCIndex.load(path, small_net)
        assert loaded.total_blocks() == small_index.total_blocks()
        n = small_net.num_vertices
        for _ in range(30):
            u, v = map(int, rng.integers(0, n, 2))
            assert loaded.next_hop(u, v) == small_index.next_hop(u, v)
            assert loaded.distance(u, v) == pytest.approx(
                small_index.distance(u, v), rel=1e-12
            )

    def test_loaded_embedding_identical(self, tmp_path, small_net, small_index):
        path = tmp_path / "index.npz"
        small_index.save(path)
        loaded = SILCIndex.load(path, small_net)
        assert loaded.embedding.order == small_index.embedding.order
        assert loaded.embedding.bounds == small_index.embedding.bounds
