"""Unit tests for repro.silc.intervals."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.silc import DistanceInterval

bound = st.floats(min_value=0, max_value=1e9, allow_nan=False)


@st.composite
def intervals(draw):
    lo = draw(bound)
    hi = draw(st.floats(min_value=lo, max_value=1e9 + 1, allow_nan=False))
    return DistanceInterval(lo, hi)


class TestConstruction:
    def test_valid(self):
        iv = DistanceInterval(1.0, 2.0)
        assert iv.lo == 1.0 and iv.hi == 2.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            DistanceInterval(2.0, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DistanceInterval(-1.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            DistanceInterval(math.nan, 1.0)

    def test_exact_factory(self):
        iv = DistanceInterval.exact(5.0)
        assert iv.is_exact and iv.lo == 5.0

    def test_unbounded_factory(self):
        iv = DistanceInterval.unbounded(2.0)
        assert iv.hi == math.inf and iv.lo == 2.0


class TestPredicates:
    def test_width(self):
        assert DistanceInterval(1.0, 3.5).width == 2.5

    def test_contains(self):
        iv = DistanceInterval(1.0, 2.0)
        assert iv.contains(1.0) and iv.contains(2.0) and iv.contains(1.5)
        assert not iv.contains(0.99) and not iv.contains(2.01)

    def test_collision_detection(self):
        a = DistanceInterval(1.0, 3.0)
        assert a.intersects(DistanceInterval(2.0, 4.0))
        assert a.intersects(DistanceInterval(3.0, 5.0))  # touching
        assert not a.intersects(DistanceInterval(3.1, 5.0))

    def test_strictly_before(self):
        assert DistanceInterval(1, 2).strictly_before(DistanceInterval(2, 3))
        assert not DistanceInterval(1, 2.5).strictly_before(DistanceInterval(2, 3))


class TestArithmetic:
    def test_shifted(self):
        iv = DistanceInterval(1.0, 2.0).shifted(3.0)
        assert (iv.lo, iv.hi) == (4.0, 5.0)

    def test_shifted_clamps_at_zero(self):
        iv = DistanceInterval(1.0, 2.0).shifted(-1.5)
        assert iv.lo == 0.0
        assert iv.hi == 0.5

    def test_intersection(self):
        a = DistanceInterval(1.0, 5.0)
        b = DistanceInterval(3.0, 8.0)
        assert a.intersection(b) == DistanceInterval(3.0, 5.0)

    def test_intersection_of_disjoint_collapses(self):
        a = DistanceInterval(1.0, 2.0)
        b = DistanceInterval(3.0, 4.0)
        mid = a.intersection(b)
        assert mid.is_exact
        assert 2.0 <= mid.lo <= 3.0

    def test_union_min(self):
        a = DistanceInterval(2.0, 6.0)
        b = DistanceInterval(3.0, 4.0)
        assert a.union_min(b) == DistanceInterval(2.0, 4.0)


class TestProperties:
    @given(intervals(), intervals())
    def test_collision_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(intervals(), intervals())
    def test_intersection_within_both(self, a, b):
        if a.intersects(b):
            i = a.intersection(b)
            assert a.lo <= i.lo and i.hi <= a.hi
            assert b.lo <= i.lo and i.hi <= b.hi

    @given(intervals(), intervals(), bound)
    def test_union_min_contains_minimum(self, a, b, x):
        """For any da in a, db in b: min(da, db) in union_min(a, b)."""
        da = min(max(x, a.lo), a.hi)
        db = min(max(x, b.lo), b.hi)
        m = a.union_min(b)
        assert m.lo <= min(da, db) <= m.hi

    @given(intervals(), st.floats(0, 1e6, allow_nan=False))
    def test_shift_preserves_width(self, iv, off):
        # Each shifted bound rounds independently, so the width can
        # drift by a few ulps of the shifted magnitude -- the tolerance
        # must scale with hi + off, not with the width itself.
        ulp = math.ulp(max(iv.hi + off, 1.0))
        assert iv.shifted(off).width == pytest.approx(
            iv.width, rel=1e-9, abs=max(1e-9, 4 * ulp)
        )
