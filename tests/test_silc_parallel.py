"""Parallel SILC construction: identity with the serial build."""

import numpy as np
import pytest

from repro.network import road_like_network
from repro.silc import (
    ProximalSILCIndex,
    SILCIndex,
    available_workers,
    resolve_workers,
)

TABLE_COLUMNS = ("codes", "levels", "colors", "lam_min", "lam_max")


def assert_identical(a, b):
    assert a.embedding.order == b.embedding.order
    assert a.embedding.bounds == b.embedding.bounds
    assert np.array_equal(a.vertex_codes, b.vertex_codes)
    assert len(a.tables) == len(b.tables)
    for ta, tb in zip(a.tables, b.tables):
        for col in TABLE_COLUMNS:
            ca, cb = getattr(ta, col), getattr(tb, col)
            assert ca.dtype == cb.dtype
            assert np.array_equal(ca, cb)


class TestParallelBuild:
    def test_matches_serial_build(self, small_net):
        serial = SILCIndex.build(small_net)
        parallel = SILCIndex.build(small_net, workers=2)
        assert_identical(serial, parallel)

    def test_small_chunks_same_result(self, small_net):
        serial = SILCIndex.build(small_net)
        parallel = SILCIndex.build(small_net, workers=2, chunk_size=7)
        assert_identical(serial, parallel)

    def test_subset_sources(self, small_net):
        subset = list(range(0, small_net.num_vertices, 3))
        serial = SILCIndex.build(small_net, sources=subset)
        parallel = SILCIndex.build(small_net, sources=subset, workers=2)
        assert_identical(serial, parallel)
        # Unbuilt sources stay empty in both.
        unbuilt = set(range(small_net.num_vertices)) - set(subset)
        for v in unbuilt:
            assert len(parallel.tables[v]) == 0

    def test_progress_reaches_total(self, small_net):
        calls = []
        SILCIndex.build(
            small_net, workers=2, chunk_size=32,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls, "progress was never called"
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert calls[-1] == (small_net.num_vertices, small_net.num_vertices)

    def test_parallel_queries_work(self, small_net, small_dist):
        index = SILCIndex.build(small_net, workers=2)
        for u, v in [(0, 50), (10, 149), (77, 3)]:
            assert index.distance(u, v) == pytest.approx(small_dist[u, v])

    def test_proximal_parallel_matches_serial(self):
        net = road_like_network(120, seed=5)
        radius = 0.3 * float(np.hypot(np.ptp(net.xs), np.ptp(net.ys)))
        serial = ProximalSILCIndex.build(net, radius=radius)
        parallel = ProximalSILCIndex.build(net, radius=radius, workers=2)
        assert_identical(serial, parallel)
        assert parallel.radius == radius


class TestGeneratorSources:
    def test_generator_sources_build_nonempty(self, small_net):
        """Regression: a generator ``sources`` used to be exhausted by
        the ``len(list(sources))`` total probe, silently producing an
        all-empty index."""
        subset = list(range(40))
        from_list = SILCIndex.build(small_net, sources=subset)
        from_gen = SILCIndex.build(small_net, sources=(v for v in subset))
        assert sum(len(t) for t in from_gen.tables) > 0
        assert_identical(from_list, from_gen)

    def test_generator_sources_parallel(self, small_net):
        subset = list(range(40))
        from_list = SILCIndex.build(small_net, sources=subset)
        from_gen = SILCIndex.build(
            small_net, sources=(v for v in subset), workers=2
        )
        assert_identical(from_list, from_gen)

    def test_generator_progress_total(self, small_net):
        totals = set()
        SILCIndex.build(
            small_net,
            sources=(v for v in range(25)),
            progress=lambda done, total: totals.add(total),
        )
        assert totals == {25}


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == available_workers()

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)
