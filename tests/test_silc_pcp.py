"""Unit tests for the Path-Coherent Pair oracle."""

import numpy as np
import pytest

from repro.network import distance_matrix, road_like_network
from repro.silc.pcp import PCPOracle


@pytest.fixture(scope="module")
def pcp_setup():
    net = road_like_network(120, seed=21)
    oracle = PCPOracle.build(net, epsilon=0.3)
    return net, oracle, distance_matrix(net)


class TestBuild:
    def test_epsilon_validation(self, small_net):
        with pytest.raises(ValueError):
            PCPOracle.build(small_net, epsilon=0.0)

    def test_size_guard(self, small_net):
        with pytest.raises(ValueError):
            PCPOracle.build(small_net, max_vertices=10)

    def test_pairs_exist(self, pcp_setup):
        _, oracle, _ = pcp_setup
        assert oracle.num_pairs() > 0

    def test_all_vertex_pairs_covered(self, pcp_setup):
        net, oracle, _ = pcp_setup
        n = net.num_vertices
        assert oracle.covered_vertex_pairs() == n * n

    def test_compression_beats_explicit(self, pcp_setup):
        """Fewer PCP records than vertex pairs: the whole point."""
        net, oracle, _ = pcp_setup
        assert oracle.num_pairs() < net.num_vertices**2


class TestQueries:
    def test_interval_contains_truth_everywhere(self, pcp_setup):
        net, oracle, D = pcp_setup
        n = net.num_vertices
        for u in range(0, n, 7):
            for v in range(0, n, 11):
                iv = oracle.distance_interval(u, v)
                assert iv.lo - 1e-9 <= D[u, v] <= iv.hi + 1e-9

    def test_epsilon_guarantee(self, pcp_setup):
        net, oracle, _ = pcp_setup
        n = net.num_vertices
        for u in range(0, n, 5):
            for v in range(0, n, 13):
                if u == v:
                    continue
                iv = oracle.distance_interval(u, v)
                if iv.lo > 0:
                    assert iv.hi <= (1.0 + oracle.epsilon) * iv.lo + 1e-9

    def test_approximate_distance_error_bounded(self, pcp_setup):
        net, oracle, D = pcp_setup
        rng = np.random.default_rng(3)
        for _ in range(200):
            u, v = map(int, rng.integers(0, net.num_vertices, 2))
            approx = oracle.distance(u, v)
            truth = D[u, v]
            if truth > 0:
                assert abs(approx - truth) <= oracle.epsilon * truth + 1e-9

    def test_self_distance(self, pcp_setup):
        _, oracle, _ = pcp_setup
        assert oracle.distance(5, 5) == 0.0
        assert oracle.access_vertex(5, 5) == 5

    def test_access_vertex_on_some_shortest_path(self, pcp_setup):
        """The dumbbell vertex must not detour beyond the epsilon slack."""
        net, oracle, D = pcp_setup
        rng = np.random.default_rng(4)
        for _ in range(100):
            u, v = map(int, rng.integers(0, net.num_vertices, 2))
            if u == v:
                continue
            t = oracle.access_vertex(u, v)
            via = D[u, t] + D[t, v]
            assert via <= (1.0 + oracle.epsilon) * D[u, v] + 1e-9

    def test_vertex_validation(self, pcp_setup):
        from repro.network import VertexNotFound

        _, oracle, _ = pcp_setup
        with pytest.raises(VertexNotFound):
            oracle.distance_interval(0, 10_000)


class TestScaling:
    def test_smaller_epsilon_more_pairs(self):
        net = road_like_network(80, seed=5)
        loose = PCPOracle.build(net, epsilon=0.5)
        tight = PCPOracle.build(net, epsilon=0.1)
        assert tight.num_pairs() > loose.num_pairs()

    def test_storage_bytes(self, pcp_setup):
        _, oracle, _ = pcp_setup
        assert oracle.storage_bytes(32) == oracle.num_pairs() * 32
