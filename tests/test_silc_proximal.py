"""Tests for the horizon-limited (proximal) SILC index."""

import numpy as np
import pytest

from repro.network import PathNotFound, distance_matrix, road_like_network
from repro.silc import SILCIndex
from repro.silc.proximal import BeyondHorizonError, ProximalSILCIndex


@pytest.fixture(scope="module")
def proximal_setup():
    net = road_like_network(150, seed=5)
    D = distance_matrix(net)
    radius = float(np.quantile(D[np.isfinite(D)], 0.3))  # cover ~30% of pairs
    return net, D, radius, ProximalSILCIndex.build(net, radius=radius)


class TestBuild:
    def test_radius_validation(self, small_net):
        with pytest.raises(ValueError):
            ProximalSILCIndex.build(small_net, radius=0.0)

    def test_local_horizon_smaller_than_full_index(self, proximal_setup):
        """Savings appear once the horizon is genuinely local.

        A wide horizon can even cost extra blocks (its boundary is one
        more color region); the LBS payoff needs a small radius.
        """
        net, _, radius, prox = proximal_setup
        full = SILCIndex.build(net)
        local = ProximalSILCIndex.build(net, radius=radius / 3)
        assert local.total_blocks() < full.total_blocks()

    def test_tighter_radius_smaller_index(self, proximal_setup):
        net, _, radius, prox = proximal_setup
        tighter = ProximalSILCIndex.build(net, radius=radius / 3)
        assert tighter.total_blocks() <= prox.total_blocks()

    def test_horizon_fraction_tracks_radius(self, proximal_setup):
        net, D, radius, prox = proximal_setup
        frac = prox.horizon_fraction()
        finite = D[np.isfinite(D) & (D > 0)]
        expected = float(np.mean(finite <= radius))
        assert frac == pytest.approx(expected, abs=0.02)


class TestQueries:
    def test_within_horizon_exact(self, proximal_setup):
        net, D, radius, prox = proximal_setup
        checked = 0
        for u in range(0, net.num_vertices, 7):
            for v in range(0, net.num_vertices, 11):
                if u == v or D[u, v] > radius:
                    continue
                assert prox.next_hop(u, v) >= 0
                iv = prox.interval_from(u, v)
                assert iv.lo - 1e-9 <= D[u, v] <= iv.hi + 1e-9
                checked += 1
        assert checked > 20

    def test_beyond_horizon_raises(self, proximal_setup):
        net, D, radius, prox = proximal_setup
        u = 0
        v = int(np.argmax(D[u]))
        assert D[u, v] > radius
        with pytest.raises(BeyondHorizonError):
            prox.next_hop(u, v)
        with pytest.raises(BeyondHorizonError):
            prox.interval_from(u, v)

    def test_within_horizon_predicate(self, proximal_setup):
        net, D, radius, prox = proximal_setup
        for u in range(0, net.num_vertices, 13):
            for v in range(0, net.num_vertices, 17):
                if u == v:
                    assert prox.within_horizon(u, v)
                    continue
                expected = D[u, v] <= radius
                # allow float slack right at the horizon
                if abs(D[u, v] - radius) > 1e-6:
                    assert prox.within_horizon(u, v) == expected

    def test_multi_hop_operations_raise_beyond_horizon(self, proximal_setup):
        """path()/distance() fail fast when the target is out of range."""
        net, D, radius, prox = proximal_setup
        u = 0
        v = int(np.argmax(D[u]))
        assert D[u, v] > radius
        with pytest.raises(BeyondHorizonError):
            prox.path(u, v)
        with pytest.raises(BeyondHorizonError):
            prox.distance(u, v)

    def test_fallback_recipe(self, proximal_setup):
        """The documented fallback (A*) covers beyond-horizon targets."""
        from repro.network import astar_path

        net, D, radius, prox = proximal_setup
        u = 0
        v = int(np.argmax(D[u]))
        try:
            d = prox.distance(u, v)
        except BeyondHorizonError:
            _, d, _ = astar_path(net, u, v)
        assert d == pytest.approx(D[u, v], rel=1e-9)

    def test_exact_distance_within_horizon(self, proximal_setup, rng):
        net, D, radius, prox = proximal_setup
        done = 0
        while done < 30:
            u, v = map(int, rng.integers(0, net.num_vertices, 2))
            if D[u, v] > radius:
                continue
            assert prox.distance(u, v) == pytest.approx(D[u, v], rel=1e-9, abs=1e-12)
            done += 1
