"""Unit tests for progressive refinement."""

import pytest

from repro.silc import RefinementCounter


class TestRefinableDistance:
    def test_initial_interval_contains_truth(self, small_index, small_dist, rng):
        n = small_dist.shape[0]
        for _ in range(50):
            u, v = map(int, rng.integers(0, n, 2))
            r = small_index.refinable(u, v)
            assert r.interval.lo <= small_dist[u, v] <= r.interval.hi

    def test_monotone_refinement(self, small_index, small_dist, rng):
        """Lower bounds never decrease, upper bounds never increase."""
        n = small_dist.shape[0]
        for _ in range(30):
            u, v = map(int, rng.integers(0, n, 2))
            r = small_index.refinable(u, v)
            prev = r.interval
            while r.refine():
                cur = r.interval
                assert cur.lo >= prev.lo - 1e-12
                assert cur.hi <= prev.hi + 1e-12
                assert cur.lo <= small_dist[u, v] + 1e-9
                assert cur.hi >= small_dist[u, v] - 1e-9
                prev = cur

    def test_terminates_exact(self, small_index, small_dist, rng):
        n = small_dist.shape[0]
        for _ in range(30):
            u, v = map(int, rng.integers(0, n, 2))
            r = small_index.refinable(u, v)
            d = r.refine_fully()
            assert r.is_exact
            assert d == pytest.approx(small_dist[u, v], rel=1e-9, abs=1e-12)

    def test_refine_on_exact_is_noop(self, small_index):
        r = small_index.refinable(3, 3)
        assert r.is_exact
        assert not r.refine()

    def test_steps_equal_path_length(self, small_index):
        u, v = 0, 100
        path = small_index.path(u, v)
        r = small_index.refinable(u, v)
        steps = 0
        while r.refine():
            steps += 1
        assert steps == len(path) - 1

    def test_counter_shared_across_refinables(self, small_index):
        counter = RefinementCounter()
        r1 = small_index.refinable(0, 50, counter=counter)
        r2 = small_index.refinable(0, 80, counter=counter)
        r1.refine()
        r2.refine()
        r2.refine()
        assert counter.count == 3

    def test_offset_shifts_whole_interval(self, small_index, small_dist):
        base = small_index.refinable(0, 60)
        shifted = small_index.refinable(0, 60, offset=5.0)
        assert shifted.interval.lo == pytest.approx(base.interval.lo + 5.0)
        assert shifted.interval.hi == pytest.approx(base.interval.hi + 5.0)
        assert shifted.refine_fully() == pytest.approx(
            small_dist[0, 60] + 5.0, rel=1e-9
        )

    def test_negative_offset_rejected(self, small_index):
        with pytest.raises(ValueError):
            small_index.refinable(0, 1, offset=-1.0)

    def test_refine_until_below(self, small_index):
        r = small_index.refinable(0, 120)
        iv = r.refine_until_below(0.05)
        assert iv.width <= 0.05 or r.is_exact

    def test_via_walks_the_shortest_path(self, small_index):
        u, v = 5, 110
        path = small_index.path(u, v)
        r = small_index.refinable(u, v)
        seen = [r.via]
        while r.refine():
            seen.append(r.via)
        assert seen == path

    def test_acc_tracks_prefix_distance(self, small_index, small_dist):
        u, v = 2, 90
        r = small_index.refinable(u, v)
        while r.refine():
            assert r.acc == pytest.approx(small_dist[u, r.via], rel=1e-9)

    def test_max_steps_guard(self, small_index):
        r = small_index.refinable(0, 100)
        with pytest.raises(RuntimeError):
            r.refine_fully(max_steps=1)
