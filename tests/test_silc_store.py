"""The flat columnar store: views, transports, persistence, mmap."""

import numpy as np
import pytest

from repro.quadtree import BlockTable
from repro.silc import FlatStore, SILCIndex, shared_memory_available
from repro.silc import parallel as parallel_mod

TABLE_COLUMNS = ("codes", "levels", "colors", "lam_min", "lam_max")

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this system"
)


def assert_identical(a: SILCIndex, b: SILCIndex) -> None:
    assert a.embedding.order == b.embedding.order
    assert a.embedding.bounds == b.embedding.bounds
    assert np.array_equal(a.vertex_codes, b.vertex_codes)
    assert len(a.tables) == len(b.tables)
    for ta, tb in zip(a.tables, b.tables):
        for col in TABLE_COLUMNS:
            ca, cb = getattr(ta, col), getattr(tb, col)
            assert ca.dtype == cb.dtype
            assert np.array_equal(ca, cb)


class TestFlatStore:
    def test_tables_are_views_of_the_columns(self, small_index):
        store = small_index.store
        for v in (0, 7, len(small_index.tables) - 1):
            table = small_index.tables[v]
            lo = int(store.offsets[v])
            assert np.shares_memory(table.codes, store.codes)
            assert table.codes[0] == store.codes[lo]

    def test_sizes_match_tables(self, small_index):
        store = small_index.store
        assert store.sizes.tolist() == [len(t) for t in small_index.tables]
        assert store.total_blocks == small_index.total_blocks()
        assert store.num_tables == small_index.network.num_vertices

    def test_from_tables_round_trip(self, small_index):
        rebuilt = FlatStore.from_tables(small_index.tables)
        assert np.array_equal(rebuilt.offsets, small_index.store.offsets)
        for col in TABLE_COLUMNS:
            assert np.array_equal(
                getattr(rebuilt, col), getattr(small_index.store, col)
            )

    def test_empty_store(self):
        store = FlatStore.empty(5)
        assert store.num_tables == 5
        assert store.total_blocks == 0
        assert all(len(t) == 0 for t in store.views())

    def test_index_accepts_table_list(self, small_net, small_index):
        clone = SILCIndex(
            small_net,
            small_index.embedding,
            small_index.vertex_codes,
            list(small_index.tables),
        )
        assert_identical(small_index, clone)

    def test_view_tables_answer_like_owned_tables(self, small_index):
        table = small_index.tables[3]
        owned = BlockTable(
            table.codes.copy(), table.levels.copy(), table.colors.copy(),
            table.lam_min.copy(), table.lam_max.copy(),
        )
        for code in table.codes[:10]:
            assert table.lookup(int(code)) == owned.lookup(int(code))
        assert table.total_cells() == owned.total_cells()


class TestBuildTransports:
    def test_pickle_pool_matches_serial(self, small_net):
        serial = SILCIndex.build(small_net)
        pooled = SILCIndex.build(small_net, workers=2, transport="pickle")
        assert_identical(serial, pooled)
        stats = parallel_mod.last_build_stats
        assert stats.transport == "pickle"
        assert stats.shared_bytes == 0
        assert stats.result_pickle_bytes > 0

    @needs_shm
    def test_shm_matches_serial(self, small_net):
        serial = SILCIndex.build(small_net)
        shm = SILCIndex.build(small_net, workers=2, transport="shm")
        assert_identical(serial, shm)

    @needs_shm
    def test_shm_ships_no_columns_through_pickle(self, small_net):
        SILCIndex.build(small_net, workers=2, chunk_size=32, transport="shm")
        stats = parallel_mod.last_build_stats
        assert stats.transport == "shm"
        # Column data (tens of KB per chunk) must travel through
        # shared memory; the pickled return value is names and sizes
        # only -- a few hundred bytes per chunk.
        assert stats.shared_bytes > 10 * stats.result_pickle_bytes
        assert stats.result_pickle_bytes < 2048 * stats.chunks
        assert stats.extras["network_shared_bytes"] > 0

    @needs_shm
    def test_shm_and_pickle_transports_identical(self, small_net):
        shm = SILCIndex.build(small_net, workers=2, transport="shm")
        pooled = SILCIndex.build(small_net, workers=2, transport="pickle")
        assert_identical(shm, pooled)

    def test_unknown_transport_rejected(self, small_net):
        with pytest.raises(ValueError):
            SILCIndex.build(small_net, workers=2, transport="carrier-pigeon")


class TestPersistenceLayouts:
    def test_npz_round_trip_identical(self, tmp_path, small_net, small_index):
        path = tmp_path / "index.npz"
        small_index.save(path)
        assert_identical(small_index, SILCIndex.load(path, small_net))

    def test_directory_round_trip_identical(self, tmp_path, small_net, small_index):
        path = tmp_path / "index.silc"
        small_index.save(path)
        assert_identical(small_index, SILCIndex.load(path, small_net))

    def test_directory_round_trip_mmap(self, tmp_path, small_net, small_index):
        path = tmp_path / "index.silc"
        small_index.save(path)
        loaded = SILCIndex.load(path, small_net, mmap=True)
        assert isinstance(loaded.store.codes, np.memmap)
        assert_identical(small_index, loaded)

    def test_mmap_on_npz_rejected(self, tmp_path, small_net, small_index):
        path = tmp_path / "index.npz"
        small_index.save(path)
        with pytest.raises(ValueError, match="directory-layout"):
            SILCIndex.load(path, small_net, mmap=True)

    def test_mmap_queries_with_storage(self, tmp_path, small_net, small_index, small_dist, rng):
        path = tmp_path / "index.silc"
        small_index.save(path)
        loaded = SILCIndex.load(path, small_net, mmap=True)
        sim = loaded.make_storage(cache_fraction=0.05)
        loaded.attach_storage(sim)
        try:
            n = small_net.num_vertices
            for _ in range(20):
                u, v = map(int, rng.integers(0, n, 2))
                assert loaded.distance(u, v) == pytest.approx(
                    small_dist[u, v], rel=1e-9
                )
            assert sim.stats.accesses > 0
        finally:
            loaded.detach_storage()

    def test_corrupt_file_rejected_at_load(self, tmp_path, small_net, small_index):
        """A scrambled column must fail loudly.  The checksum manifest
        now catches it before the per-table validating constructors
        even see the bytes, and names the bad column."""
        from repro.errors import CorruptIndexError

        path = tmp_path / "index.silc"
        small_index.save(path)
        codes = np.load(path / "codes.npy")
        codes[: len(codes) // 2] = codes[: len(codes) // 2][::-1]
        np.save(path / "codes.npy", codes)
        with pytest.raises(CorruptIndexError, match="codes"):
            SILCIndex.load(path, small_net)

    def test_mmap_knn_matches_in_memory(self, tmp_path, small_net, small_index, small_object_index):
        from repro.query import knn

        path = tmp_path / "index.silc"
        small_index.save(path)
        loaded = SILCIndex.load(path, small_net, mmap=True)
        for q in (0, 31, 88):
            a = knn(small_index, small_object_index, q, 5, exact=True)
            b = knn(loaded, small_object_index, q, 5, exact=True)
            assert a.ids() == b.ids()
