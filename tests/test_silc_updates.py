"""Tests for localized index maintenance (the paper's update challenge)."""

import numpy as np
import pytest

from repro.network import distance_matrix, road_like_network
from repro.silc import SILCIndex
from repro.silc.updates import (
    affected_sources,
    diff_edges,
    sources_using_edge,
    update_index,
)


@pytest.fixture(scope="module")
def update_setup():
    net = road_like_network(120, seed=77)
    index = SILCIndex.build(net)
    return net, index


def close_edge_on_a_path(net, index, src=0, dst=110):
    """A bidirectional closure that keeps the network connected."""
    path = index.path(src, dst)
    for i in range(1, len(path) - 2):
        a, b = path[i], path[i + 1]
        closed = net.without_edges([(a, b), (b, a)])
        if closed.num_strongly_connected_components() == 1:
            return closed, (a, b)
    pytest.skip("no closable edge found on this path")


class TestDiffEdges:
    def test_no_changes(self, update_setup):
        net, _ = update_setup
        assert diff_edges(net, net) == []

    def test_removal_detected(self, update_setup):
        net, index = update_setup
        closed, (a, b) = close_edge_on_a_path(net, index)
        changes = {(c[0], c[1]): (c[2], c[3]) for c in diff_edges(net, closed)}
        assert changes[(a, b)][1] is None
        assert changes[(b, a)][1] is None
        assert len(changes) == 2

    def test_insertion_detected(self, update_setup):
        net, _ = update_setup
        # duplicate removal in reverse: diff(new, old) shows insertion
        extra = net.with_edges([(0, 100, 500.0)]) if not net.has_edge(0, 100) else net
        changes = diff_edges(net, extra)
        if extra is not net:
            assert changes == [(0, 100, None, 500.0)]

    def test_weight_change_detected(self, update_setup):
        net, _ = update_setup
        u, v, w = next(iter(net.iter_edges()))
        changed = net.without_edges([(u, v)]).with_edges([(u, v, w * 2)])
        changes = diff_edges(net, changed)
        assert changes == [(u, v, w, w * 2)]

    def test_vertex_change_rejected(self, update_setup):
        net, _ = update_setup
        other = road_like_network(120, seed=78)
        from repro.network import GraphConstructionError

        with pytest.raises(GraphConstructionError):
            diff_edges(net, other)


class TestSourcesUsingEdge:
    def test_predicate_matches_definition(self, update_setup):
        net, _ = update_setup
        D = distance_matrix(net)
        u, v, w = next(iter(net.iter_edges()))
        got = sources_using_edge(net, u, v)
        expected = {
            s
            for s in range(net.num_vertices)
            if abs(D[s, u] + w - D[s, v]) <= 1e-6
        }
        assert got == expected

    def test_tail_is_always_included(self, update_setup):
        """The edge's own tail uses the edge iff it is a shortest link."""
        net, _ = update_setup
        D = distance_matrix(net)
        u, v, w = next(iter(net.iter_edges()))
        if abs(D[u, v] - w) <= 1e-9:
            assert u in sources_using_edge(net, u, v)


class TestUpdateIndex:
    def test_identity_update(self, update_setup):
        net, index = update_setup
        new_index, rebuilt = update_index(index, net)
        assert rebuilt == set()
        # No change: the whole flat store is shared, not copied.
        assert new_index.store is index.store

    def test_closure_matches_full_rebuild(self, update_setup, rng):
        net, index = update_setup
        closed, _ = close_edge_on_a_path(net, index)
        patched, rebuilt = update_index(index, closed)
        assert rebuilt, "a used edge closure must affect someone"
        D = distance_matrix(closed)
        for _ in range(120):
            u, v = map(int, rng.integers(0, net.num_vertices, 2))
            assert patched.distance(u, v) == pytest.approx(
                D[u, v], rel=1e-9, abs=1e-12
            )

    def test_unaffected_tables_carried_over(self, update_setup):
        net, index = update_setup
        closed, _ = close_edge_on_a_path(net, index)
        patched, rebuilt = update_index(index, closed)
        untouched = set(range(net.num_vertices)) - rebuilt
        assert untouched, "a local closure must leave most tables alone"
        # Untouched tables carry their columns over bit-for-bit into
        # the new flat store; only the rebuilt sources were recomputed
        # (and at least one of them actually changed).
        for s in untouched:
            old, new = index.tables[s], patched.tables[s]
            assert np.array_equal(old.codes, new.codes)
            assert np.array_equal(old.colors, new.colors)
            assert np.array_equal(old.lam_min, new.lam_min)
        assert any(
            not np.array_equal(index.tables[s].colors, patched.tables[s].colors)
            or not np.array_equal(index.tables[s].codes, patched.tables[s].codes)
            or not np.array_equal(index.tables[s].lam_max, patched.tables[s].lam_max)
            for s in rebuilt
        ), "a closure on a used edge must change at least one rebuilt table"

    def test_speedup_matches_full_rebuild(self, update_setup, rng):
        """A new fast edge (shortcut) must propagate to all users."""
        net, index = update_setup
        # shortcut between two far vertices
        D_old = distance_matrix(net)
        u, v = 0, int(np.argmax(D_old[0]))
        shortcut_w = net.euclidean(u, v)  # metric-respecting fast road
        boosted = net.with_edges([(u, v, shortcut_w), (v, u, shortcut_w)])
        patched, rebuilt = update_index(index, boosted)
        assert rebuilt
        D = distance_matrix(boosted)
        for _ in range(120):
            a, b = map(int, rng.integers(0, net.num_vertices, 2))
            assert patched.distance(a, b) == pytest.approx(
                D[a, b], rel=1e-9, abs=1e-12
            )

    def test_weight_increase_matches_full_rebuild(self, update_setup, rng):
        net, index = update_setup
        path = index.path(5, 100)
        a, b = path[1], path[2]
        w = net.edge_weight(a, b)
        slowed = net.without_edges([(a, b)]).with_edges([(a, b, w * 3)])
        patched, rebuilt = update_index(index, slowed)
        D = distance_matrix(slowed)
        for _ in range(100):
            s, t = map(int, rng.integers(0, net.num_vertices, 2))
            assert patched.distance(s, t) == pytest.approx(
                D[s, t], rel=1e-9, abs=1e-12
            )

    def test_rebuild_cost_is_local(self, update_setup):
        """Most sources survive a single local closure untouched."""
        net, index = update_setup
        closed, _ = close_edge_on_a_path(net, index)
        _, rebuilt = update_index(index, closed)
        assert len(rebuilt) < net.num_vertices
