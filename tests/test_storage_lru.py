"""Unit tests for the LRU page cache, incl. a reference-model property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import CacheStats, LRUCache


class TestLRUBehaviour:
    def test_miss_then_hit(self):
        c = LRUCache(capacity=2)
        assert not c.access(1)
        assert c.access(1)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_eviction_order_is_lru(self):
        c = LRUCache(capacity=2)
        c.access(1)
        c.access(2)
        c.access(1)  # 1 becomes most recent
        c.access(3)  # evicts 2
        assert 1 in c and 3 in c and 2 not in c

    def test_capacity_never_exceeded(self):
        c = LRUCache(capacity=3)
        for i in range(10):
            c.access(i)
            assert len(c) <= 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_clear_keeps_stats(self):
        c = LRUCache(capacity=2)
        c.access(1)
        c.clear()
        assert len(c) == 0
        assert c.stats.misses == 1
        assert not c.access(1)  # cold again

    def test_eviction_counter(self):
        c = LRUCache(capacity=1)
        c.access(1)
        c.access(2)
        c.access(3)
        assert c.stats.evictions == 2


class TestCacheStats:
    def test_hit_rate(self):
        s = CacheStats(accesses=10, hits=7, misses=3)
        assert s.hit_rate == pytest.approx(0.7)

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_io_time(self):
        s = CacheStats(accesses=10, hits=7, misses=3)
        assert s.io_time(0.002) == pytest.approx(0.006)

    def test_delta_since(self):
        a = CacheStats(accesses=5, hits=3, misses=2)
        b = CacheStats(accesses=9, hits=5, misses=4, evictions=1)
        d = b.delta_since(a)
        assert (d.accesses, d.hits, d.misses, d.evictions) == (4, 2, 2, 1)

    def test_snapshot_is_independent(self):
        c = LRUCache(capacity=2)
        snap = c.stats.snapshot()
        c.access(1)
        assert snap.accesses == 0
        assert c.stats.accesses == 1


class TestAgainstReferenceModel:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 6),
        st.lists(st.integers(0, 12), min_size=1, max_size=120),
    )
    def test_matches_naive_lru_simulation(self, capacity, accesses):
        """Hits/misses must match an obviously correct list-based model."""
        cache = LRUCache(capacity=capacity)
        reference: list[int] = []
        for page in accesses:
            expect_hit = page in reference
            if expect_hit:
                reference.remove(page)
            reference.append(page)
            if len(reference) > capacity:
                reference.pop(0)
            assert cache.access(page) == expect_hit
            assert len(cache) == len(reference)
            assert set(reference) == {p for p in reference if p in cache}
