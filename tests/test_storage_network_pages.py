"""Unit tests for the network-side disk page model."""

import pytest

from repro.storage import NetworkStorageModel


class TestNetworkStorageModel:
    def test_total_pages_positive(self, small_net):
        model = NetworkStorageModel(small_net)
        assert model.total_pages >= 1

    def test_touch_counts_accesses(self, small_net):
        model = NetworkStorageModel(small_net)
        before = model.stats.accesses
        model.touch_vertex(0)
        model.touch_vertex(1)
        assert model.stats.accesses == before + 2

    def test_spatial_locality_of_layout(self, small_net):
        """Near vertices should often share a page (Morton packing)."""
        model = NetworkStorageModel(small_net, page_size=4096)
        shared = 0
        total = 0
        for u, v, _ in small_net.iter_edges():
            total += 1
            if model._page_of_vertex[u] == model._page_of_vertex[v]:
                shared += 1
        # with ~70 vertices/page on a 150-vertex network most
        # neighbors share
        assert shared / total > 0.3

    def test_repeat_touch_hits(self, small_net):
        model = NetworkStorageModel(small_net)
        model.touch_vertex(3)
        before_misses = model.stats.misses
        model.touch_vertex(3)
        assert model.stats.misses == before_misses

    def test_io_accounting(self, small_net):
        model = NetworkStorageModel(small_net, cache_fraction=0.05)
        snap = model.snapshot()
        for v in range(small_net.num_vertices):
            model.touch_vertex(v)
        assert model.io_time_since(snap) > 0

    def test_warm_up_resets_residency(self, small_net):
        model = NetworkStorageModel(small_net)
        model.touch_vertex(0)
        model.warm_up()
        misses = model.stats.misses
        model.touch_vertex(0)
        assert model.stats.misses == misses + 1

    def test_parameter_validation(self, small_net):
        with pytest.raises(ValueError):
            NetworkStorageModel(small_net, page_size=0)
        with pytest.raises(ValueError):
            NetworkStorageModel(small_net, cache_fraction=0.0)

    def test_small_page_means_more_pages(self, small_net):
        big = NetworkStorageModel(small_net, page_size=8192)
        small = NetworkStorageModel(small_net, page_size=512)
        assert small.total_pages > big.total_pages
