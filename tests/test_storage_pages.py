"""Unit tests for the page layout."""

import pytest

from repro.storage import PageLayout, StorageLayout


class TestPageLayout:
    def test_records_per_page(self):
        assert PageLayout(page_size=4096, record_bytes=16).records_per_page == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=0)
        with pytest.raises(ValueError):
            PageLayout(record_bytes=0)
        with pytest.raises(ValueError):
            PageLayout(page_size=8, record_bytes=16)


class TestStorageLayout:
    def test_single_table(self):
        layout = StorageLayout([300], PageLayout(4096, 16))
        assert layout.pages_per_table == [2]  # 256 + 44
        assert layout.total_pages == 2
        assert layout.page_of(0, 0) == 0
        assert layout.page_of(0, 255) == 0
        assert layout.page_of(0, 256) == 1

    def test_tables_start_on_fresh_pages(self):
        layout = StorageLayout([10, 10], PageLayout(4096, 16))
        assert layout.page_of(0, 0) != layout.page_of(1, 0)

    def test_empty_table_occupies_one_page(self):
        layout = StorageLayout([0, 5], PageLayout(4096, 16))
        assert layout.pages_per_table[0] == 1
        assert layout.total_pages == 2

    def test_total_bytes(self):
        layout = StorageLayout([300], PageLayout(4096, 16))
        assert layout.total_bytes == 2 * 4096

    def test_record_bounds_checked(self):
        layout = StorageLayout([10])
        with pytest.raises(IndexError):
            layout.page_of(0, 10)
        with pytest.raises(IndexError):
            layout.page_of(1, 0)
        with pytest.raises(IndexError):
            layout.page_of(0, -1)

    def test_pages_of_range(self):
        layout = StorageLayout([600], PageLayout(4096, 16))
        assert list(layout.pages_of_range(0, 0, 256)) == [0]
        assert list(layout.pages_of_range(0, 250, 300)) == [0, 1]
        assert list(layout.pages_of_range(0, 5, 5)) == []

    def test_layout_is_contiguous(self):
        sizes = [100, 256, 1, 700]
        layout = StorageLayout(sizes, PageLayout(4096, 16))
        seen = []
        for t, size in enumerate(sizes):
            seen.append(layout.page_of(t, 0))
        assert seen == sorted(seen)
        assert layout.total_pages == sum(layout.pages_per_table)
