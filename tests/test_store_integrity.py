"""Crash-safe persistence: atomic saves, checksum manifests, typed
corruption errors.

The contract under test (docs/OPERATIONS.md "Failure modes"):

* a save either publishes a complete, verified directory or leaves the
  previous state untouched -- never a half-written index;
* a truncated or byte-flipped column fails the *load* with
  :class:`~repro.errors.CorruptIndexError` naming the bad column,
  before any query can run on garbage;
* pre-manifest directories (the legacy layout) still load.
"""

import json

import numpy as np
import pytest

from repro.errors import CorruptIndexError
from repro.faults import corrupt_file, truncate_file
from repro.integrity import (
    MANIFEST_NAME,
    atomic_directory,
    read_manifest,
    verify_manifest,
    write_manifest,
)
from repro.shard import ShardMap
from repro.silc import SILCIndex


@pytest.fixture()
def saved(tmp_path, small_index):
    path = tmp_path / "index.silc"
    small_index.save(path)
    return path


class TestManifest:
    def test_save_writes_a_verifiable_manifest(self, saved):
        assert (saved / MANIFEST_NAME).exists()
        assert verify_manifest(saved) is True
        assert verify_manifest(saved, deep=True) is True
        manifest = read_manifest(saved)
        assert "codes.npy" in manifest["files"]
        assert MANIFEST_NAME not in manifest["files"]

    def test_no_manifest_means_unverified_not_an_error(self, tmp_path):
        assert verify_manifest(tmp_path) is False

    def test_truncation_caught_by_size_check(self, saved):
        truncate_file(saved / "codes.npy")
        with pytest.raises(CorruptIndexError, match="codes") as exc:
            verify_manifest(saved)
        assert exc.value.column == "codes"

    def test_missing_column_caught(self, saved):
        (saved / "levels.npy").unlink()
        with pytest.raises(CorruptIndexError, match="levels"):
            verify_manifest(saved)

    def test_byte_flip_caught_only_by_deep_check(self, saved):
        corrupt_file(saved / "colors.npy")
        assert verify_manifest(saved) is True  # size is unchanged
        with pytest.raises(CorruptIndexError, match="colors"):
            verify_manifest(saved, deep=True)


class TestAtomicDirectory:
    def test_failure_mid_write_leaves_original_untouched(self, tmp_path):
        path = tmp_path / "data"
        with atomic_directory(path) as tmp:
            np.save(tmp / "a.npy", np.arange(4))
        before = sorted(p.name for p in path.iterdir())

        with pytest.raises(RuntimeError, match="boom"):
            with atomic_directory(path) as tmp:
                np.save(tmp / "b.npy", np.arange(8))
                raise RuntimeError("boom")

        assert sorted(p.name for p in path.iterdir()) == before
        assert verify_manifest(path, deep=True) is True
        # No staging litter left behind.
        assert [p for p in tmp_path.iterdir() if p.name != "data"] == []

    def test_success_replaces_the_directory_wholesale(self, tmp_path):
        path = tmp_path / "data"
        with atomic_directory(path) as tmp:
            np.save(tmp / "old.npy", np.arange(4))
        with atomic_directory(path) as tmp:
            np.save(tmp / "new.npy", np.arange(8))
        assert not (path / "old.npy").exists()
        assert (path / "new.npy").exists()
        assert verify_manifest(path, deep=True) is True


class TestIndexLoadRejectsCorruption:
    """The acceptance bar: corruption fails the *load*, pre-query."""

    @pytest.mark.parametrize("mmap", [False, True])
    def test_truncated_column_fails_load(self, saved, small_net, mmap):
        truncate_file(saved / "lam_min.npy")
        with pytest.raises(CorruptIndexError, match="lam_min"):
            SILCIndex.load(saved, small_net, mmap=mmap)

    def test_byte_flip_fails_eager_load(self, saved, small_net):
        corrupt_file(saved / "lam_max.npy")
        with pytest.raises(CorruptIndexError, match="lam_max"):
            SILCIndex.load(saved, small_net)

    def test_truncated_npz_fails_load(self, tmp_path, small_net, small_index):
        path = tmp_path / "index.npz"
        small_index.save(path)
        truncate_file(path)
        with pytest.raises(CorruptIndexError):
            SILCIndex.load(path, small_net)

    def test_legacy_directory_without_manifest_loads(
        self, saved, small_net, small_index
    ):
        (saved / MANIFEST_NAME).unlink()
        loaded = SILCIndex.load(saved, small_net)
        assert np.array_equal(loaded.vertex_codes, small_index.vertex_codes)

    def test_clean_roundtrip_still_works(self, saved, small_net, small_index):
        loaded = SILCIndex.load(saved, small_net, mmap=True)
        assert np.array_equal(loaded.vertex_codes, small_index.vertex_codes)


class TestShardedLoadRejectsCorruption:
    @pytest.fixture()
    def sharded(self, tmp_path, small_index):
        directory = tmp_path / "shards"
        small_index.save_sharded(directory, ShardMap.from_index(small_index, 4))
        return directory

    def test_truncated_shard_column_fails_load(self, sharded, small_net):
        shard_dirs = sorted(p for p in sharded.iterdir() if p.is_dir())
        truncate_file(shard_dirs[0] / "codes.npy")
        with pytest.raises(CorruptIndexError, match="codes"):
            SILCIndex.load_sharded(sharded, small_net, primary=0, mmap=True)

    def test_truncated_metadata_fails_load(self, sharded, small_net):
        truncate_file(sharded / "vertex_codes.npy")
        with pytest.raises(CorruptIndexError, match="vertex_codes"):
            SILCIndex.load_sharded(sharded, small_net, primary=0, mmap=True)

    def test_clean_sharded_roundtrip(self, sharded, small_net, small_index):
        loaded = SILCIndex.load_sharded(sharded, small_net, primary=0, mmap=True)
        assert np.array_equal(loaded.vertex_codes, small_index.vertex_codes)

    def test_every_layer_has_a_manifest(self, sharded):
        assert (sharded / MANIFEST_NAME).exists()
        for sub in sorted(p for p in sharded.iterdir() if p.is_dir()):
            assert (sub / MANIFEST_NAME).exists()


class TestLabellingPersistence:
    def test_labelling_save_verified_on_load(self, tmp_path, small_net):
        from repro.oracle.labelling import PrunedLabellingOracle

        oracle = PrunedLabellingOracle.build(small_net)
        path = tmp_path / "labels"
        oracle.save(path)
        assert verify_manifest(path, deep=True) is True

        loaded = PrunedLabellingOracle.load(path, small_net)
        assert loaded.distance(0, 40) == pytest.approx(oracle.distance(0, 40))

        truncate_file(path / "out_hubs.npy")
        with pytest.raises(CorruptIndexError, match="out_hubs"):
            PrunedLabellingOracle.load(path, small_net)


class TestManifestFormat:
    def test_manifest_is_json_with_sizes_and_checksums(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        entry = manifest["files"]["codes.npy"]
        assert entry["size"] == (saved / "codes.npy").stat().st_size
        assert isinstance(entry["crc32"], int)

    def test_write_manifest_is_rerunnable(self, saved):
        write_manifest(saved)
        assert verify_manifest(saved, deep=True) is True
