"""Property-based validation of localized updates on random networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import distance_matrix, road_like_network
from repro.silc import SILCIndex
from repro.silc.updates import update_index

_CACHE: dict[int, tuple] = {}


def setup(seed: int):
    if seed not in _CACHE:
        net = road_like_network(50, seed=seed + 400)
        _CACHE[seed] = (net, SILCIndex.build(net))
        if len(_CACHE) > 6:
            _CACHE.pop(next(iter(_CACHE)))
    return _CACHE[seed]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2),
    edge_pick=st.integers(0, 10_000),
    factor=st.floats(1.5, 5.0),
)
def test_weight_increase_equals_full_rebuild(seed, edge_pick, factor):
    """Slowing any edge, patched index == rebuilt index (distances)."""
    net, index = setup(seed)
    edges = list(net.iter_edges())
    u, v, w = edges[edge_pick % len(edges)]
    slowed = net.without_edges([(u, v)]).with_edges([(u, v, w * factor)])
    patched, _ = update_index(index, slowed)
    D = distance_matrix(slowed)
    rng = np.random.default_rng(edge_pick)
    for _ in range(25):
        a, b = map(int, rng.integers(0, net.num_vertices, 2))
        assert patched.distance(a, b) == pytest.approx(
            D[a, b], rel=1e-9, abs=1e-12
        )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2),
    a=st.integers(0, 49),
    b=st.integers(0, 49),
)
def test_shortcut_insertion_equals_full_rebuild(seed, a, b):
    """Adding any metric shortcut, patched index == rebuilt index."""
    net, index = setup(seed)
    if a == b or net.has_edge(a, b):
        return
    w = max(net.euclidean(a, b), 1e-6)
    boosted = net.with_edges([(a, b, w), (b, a, w)])
    patched, _ = update_index(index, boosted)
    D = distance_matrix(boosted)
    rng = np.random.default_rng(a * 100 + b)
    for _ in range(25):
        s, t = map(int, rng.integers(0, net.num_vertices, 2))
        assert patched.distance(s, t) == pytest.approx(
            D[s, t], rel=1e-9, abs=1e-12
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2), edge_pick=st.integers(0, 10_000))
def test_removal_equals_full_rebuild_when_connected(seed, edge_pick):
    """Closing any edge that keeps connectivity, patched == rebuilt."""
    net, index = setup(seed)
    edges = list(net.iter_edges())
    u, v, _ = edges[edge_pick % len(edges)]
    closed = net.without_edges([(u, v), (v, u)])
    if closed.num_strongly_connected_components() != 1:
        return
    patched, rebuilt = update_index(index, closed)
    D = distance_matrix(closed)
    rng = np.random.default_rng(edge_pick + 1)
    for _ in range(25):
        s, t = map(int, rng.integers(0, net.num_vertices, 2))
        assert patched.distance(s, t) == pytest.approx(
            D[s, t], rel=1e-9, abs=1e-12
        )
