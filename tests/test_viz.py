"""Tests for the shortest-path-map renderer."""

import numpy as np
import pytest

from repro.viz import (
    region_summary,
    render_ascii,
    render_ppm,
    shortest_path_map_grid,
)


class TestGrid:
    def test_shape(self, small_index):
        grid = shortest_path_map_grid(small_index, 0, resolution=32)
        assert grid.shape == (32, 32)

    def test_resolution_validated(self, small_index):
        with pytest.raises(ValueError):
            shortest_path_map_grid(small_index, 0, resolution=1)

    def test_colors_bounded_by_degree(self, small_net, small_index):
        grid = shortest_path_map_grid(small_index, 5, resolution=48)
        used = set(np.unique(grid)) - {-1}
        # distinct colors <= out-degree + the source's own color
        assert len(used) <= small_net.out_degree(5) + 1

    def test_some_area_is_colored(self, small_index):
        grid = shortest_path_map_grid(small_index, 0, resolution=48)
        assert (grid >= 0).sum() > 0

    def test_vertex_cells_match_quadtree(self, small_net, small_index):
        """The rasterizer must agree with direct table lookups."""
        from repro.geometry.morton import morton_encode

        source = 3
        res = 64
        grid = shortest_path_map_grid(small_index, source, resolution=res)
        cells = small_index.embedding.cells_per_side
        table = small_index.tables[source]
        # check a sample of raster positions against the table
        for ry in range(0, res, 7):
            cy = min(ry * cells // res, cells - 1)
            for rx in range(0, res, 7):
                cx = min(rx * cells // res, cells - 1)
                hit = table.lookup(morton_encode(cx, cy))
                assert (grid[ry, rx] >= 0) == (hit is not None)


class TestRenderers:
    def test_ascii_dimensions(self, small_index):
        grid = shortest_path_map_grid(small_index, 0, resolution=16)
        art = render_ascii(grid)
        lines = art.splitlines()
        assert len(lines) == 16
        assert all(len(line) == 16 for line in lines)

    def test_ascii_uses_letters_and_dots(self, small_index):
        grid = shortest_path_map_grid(small_index, 0, resolution=16)
        art = render_ascii(grid)
        assert set(art) - {"\n"} <= set(".abcdefghijklmnopqrstuvwxyz")

    def test_ppm_file(self, small_index, tmp_path):
        grid = shortest_path_map_grid(small_index, 0, resolution=20)
        path = render_ppm(grid, tmp_path / "map.ppm")
        data = path.read_bytes()
        assert data.startswith(b"P6\n20 20\n255\n")
        header_len = len(b"P6\n20 20\n255\n")
        assert len(data) == header_len + 20 * 20 * 3

    def test_region_summary_counts_blocks(self, small_index):
        counts = region_summary(small_index, 7)
        assert sum(counts.values()) == len(small_index.tables[7])
