#!/usr/bin/env python
"""Fail on dead relative links in the repository's markdown files.

Scans README.md and everything under docs/ for markdown links
(``[text](target)``), resolves relative targets against the linking
file's directory, and exits nonzero listing every target that does
not exist.  External (``http(s)``, ``mailto:``) and pure-anchor
(``#...``) links are skipped; fragments are stripped before the
existence check.  Run from anywhere:

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Inline markdown links; the target group stops at the closing paren
#: (no nested-paren targets in this repository).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files() -> list[Path]:
    files = [ROOT / "README.md"]
    docs = ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list[str]:
    """Dead-link messages for one markdown file."""
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(ROOT)}:{lineno}: dead link -> {target}"
                )
    return problems


def main() -> int:
    problems = [p for f in markdown_files() for p in check_file(f)]
    if problems:
        print("\n".join(problems))
        print(f"{len(problems)} dead link(s)")
        return 1
    print(f"checked {len(markdown_files())} markdown file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
