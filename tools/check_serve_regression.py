"""Gate serving p95 latency against the committed trajectory.

CI appends a fresh ``repro trace-report --record`` row to a copy of
``benchmarks/results/serve_latency.txt`` and runs this script on it:
the *last* row of each shard group is the fresh run, every earlier
row is history, and the check fails when the fresh p95 exceeds
``max(ratio * median(history), floor)``.

The ratio is deliberately loose and a wall-clock floor always
applies: shared CI runners are noisy, and this gate exists to catch
order-of-magnitude rot (a lock on the hot path, an accidental
re-sort per request), not single-digit-percent drift -- the
counted-op benchmarks own the fine-grained regressions.  A shard
group with no history passes (first recorded run *is* the baseline).

Usage: check_serve_regression.py serve_latency.txt \
           [--max-ratio 10.0] [--floor-ms 50.0]
Needs ``PYTHONPATH=src`` for :mod:`repro.benchreport`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from statistics import median

from repro.benchreport import parse_serve_latency


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectory", help="serve_latency.txt with the fresh run appended")
    parser.add_argument("--max-ratio", type=float, default=10.0,
                        help="fail when fresh p95 > ratio * median(history)")
    parser.add_argument("--floor-ms", type=float, default=50.0,
                        help="never fail below this absolute p95 "
                        "(CI-hardware noise floor, milliseconds)")
    args = parser.parse_args(argv)

    records = parse_serve_latency(Path(args.trajectory).read_text())
    if not records:
        print("serve-regression: no records; nothing to check")
        return 0

    groups: dict[int, list] = {}
    for record in records:
        groups.setdefault(record.shards, []).append(record)

    failed = False
    for shards, rs in sorted(groups.items()):
        fresh, history = rs[-1], rs[:-1]
        if not history:
            print(
                f"serve-regression: shards={shards} "
                f"p95={fresh.p95 * 1e3:.2f} ms -- first run, baseline set"
            )
            continue
        baseline = median(r.p95 for r in history)
        limit = max(args.max_ratio * baseline, args.floor_ms / 1e3)
        verdict = "ok" if fresh.p95 <= limit else "REGRESSION"
        print(
            f"serve-regression: shards={shards} "
            f"p95={fresh.p95 * 1e3:.2f} ms vs baseline "
            f"{baseline * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms) -- {verdict}"
        )
        if fresh.p95 > limit:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
