"""Assert two `repro serve` JSON-lines outputs answered identically.

CI's planner-parity smoke runs the same request file through
``--oracle silc`` and ``--oracle auto`` and feeds both outputs here.
Responses arrive in completion order and carry timing fields, so a
textual diff cannot work; this script pairs responses by request id
and compares the answers themselves: every response must be
``status: ok``, neighbor ids must match exactly, and distances must
agree to within floating-point tolerance (backends sum the same
shortest path in different association orders).

Usage: compare_serve_outputs.py A.out B.out [--expect N]
"""

from __future__ import annotations

import argparse
import json
import math
import sys

REL_TOL = 1e-9


def load(path: str) -> dict[int, dict]:
    responses: dict[int, dict] = {}
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            if record["status"] != "ok":
                raise SystemExit(f"{path}: request {record['id']} not ok: {record}")
            responses[record["id"]] = record
    return responses


def answer(record: dict) -> tuple[list, list]:
    return record["ids"], record["distances"]


def close(a, b) -> bool:
    if isinstance(a, list):
        return len(a) == len(b) and all(close(x, y) for x, y in zip(a, b))
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=1e-12)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--expect", type=int, default=None,
                        help="required response count per file")
    args = parser.parse_args(argv)

    base = load(args.baseline)
    cand = load(args.candidate)
    if base.keys() != cand.keys():
        raise SystemExit(
            f"request ids differ: {sorted(base)} vs {sorted(cand)}"
        )
    if args.expect is not None and len(base) != args.expect:
        raise SystemExit(f"expected {args.expect} responses, got {len(base)}")
    for rid in sorted(base):
        ids_a, dists_a = answer(base[rid])
        ids_b, dists_b = answer(cand[rid])
        if ids_a != ids_b:
            raise SystemExit(
                f"request {rid}: neighbor ids differ: {ids_a} vs {ids_b}"
            )
        if not close(dists_a, dists_b):
            raise SystemExit(
                f"request {rid}: distances differ: {dists_a} vs {dists_b}"
            )
    print(f"parity ok: {len(base)} responses identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
